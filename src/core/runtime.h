// SysTest systematic-testing framework.
//
// Machine, Monitor and Runtime — the C++ rendering of the P# programming
// model (§2.1 of the paper): programs are state machines that communicate
// asynchronously by exchanging events; each machine has an event queue and
// one or more states; states register actions for incoming events; sends are
// non-blocking. During testing the runtime *serializes* the system: a single
// scheduling step picks one enabled machine and runs it until it yields
// (handler completion, or suspension in a Receive). Every scheduling decision
// and every controlled nondeterministic choice is recorded in a Trace, which
// makes executions fully replayable.
//
// Hot-path architecture (this is the inner loop of every 100k-execution
// testing budget):
//  * State declarations are compiled once per machine TYPE into an immutable
//    shared MachineDecl (core/decl.h); instances after the first skip
//    declaration building entirely. Event dispatch is flat-vector indexing
//    on interned EventTypeIds, not hashing on type_index.
//  * Each machine caches its enabled-flag; Runtime::Step re-examines only
//    machines whose queue or control state changed since the last step, and
//    reuses one scratch buffer for the enabled set.
//  * Assertion messages are built only on failure, and the execution log
//    appends into a single buffer (and only when logging is on).
#pragma once

#include <cassert>
#include <functional>
#include <initializer_list>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <typeindex>
#include <utility>
#include <vector>

#include "core/bug.h"
#include "core/decl.h"
#include "core/event.h"
#include "core/event_queue.h"
#include "core/fingerprint.h"
#include "core/strategy.h"
#include "core/task.h"
#include "core/trace.h"

namespace systest {

class Machine;
class Monitor;
class Runtime;

namespace obs {
struct ExecutionProbe;  // obs/probe.h — per-execution instrumentation sink
}  // namespace obs

namespace detail {
class EventArena;  // core/event_arena.h — execution-scoped event storage
}  // namespace detail

/// Fluent builder used in machine constructors to declare a state's behavior.
/// Inert (decl_ == nullptr) when the machine type's declarations are already
/// compiled — see core/decl.h.
class StateBuilder {
 public:
  explicit StateBuilder(detail::StateDecl* decl) : decl_(decl) {}

  /// Registers a synchronous action for event E: void M::Fn(const E&).
  template <typename E, typename M>
  StateBuilder& On(void (M::*fn)(const E&)) {
    if (decl_ == nullptr) return *this;
    decl_->handlers[EventTypeIdOf<E>()].sync = [fn](Machine& m,
                                                    const Event* e) {
      (static_cast<M&>(m).*fn)(static_cast<const E&>(*e));
    };
    return *this;
  }

  /// Registers a synchronous action that ignores the payload: void M::Fn().
  template <typename E, typename M>
  StateBuilder& On(void (M::*fn)()) {
    if (decl_ == nullptr) return *this;
    decl_->handlers[EventTypeIdOf<E>()].sync = [fn](Machine& m, const Event*) {
      (static_cast<M&>(m).*fn)();
    };
    return *this;
  }

  /// Registers a coroutine action for event E: Task M::Fn(const E&). The
  /// event stays alive until the coroutine completes.
  template <typename E, typename M>
  StateBuilder& On(Task (M::*fn)(const E&)) {
    if (decl_ == nullptr) return *this;
    decl_->handlers[EventTypeIdOf<E>()].coro = [fn](Machine& m,
                                                    const Event* e) {
      return (static_cast<M&>(m).*fn)(static_cast<const E&>(*e));
    };
    return *this;
  }

  /// Registers a coroutine action ignoring the payload: Task M::Fn().
  template <typename E, typename M>
  StateBuilder& On(Task (M::*fn)()) {
    if (decl_ == nullptr) return *this;
    decl_->handlers[EventTypeIdOf<E>()].coro = [fn](Machine& m, const Event*) {
      return (static_cast<M&>(m).*fn)();
    };
    return *this;
  }

  /// On event E, transition directly to `target` (exit/entry actions run).
  template <typename E>
  StateBuilder& OnGoto(std::string target) {
    if (decl_ == nullptr) return *this;
    decl_->gotos[EventTypeIdOf<E>()] = std::move(target);
    return *this;
  }

  /// Defer E in this state: it stays queued until a state handles it.
  template <typename E>
  StateBuilder& Defer() {
    if (decl_ == nullptr) return *this;
    decl_->defers.insert(EventTypeIdOf<E>());
    return *this;
  }

  /// Ignore (drop) E in this state.
  template <typename E>
  StateBuilder& Ignore() {
    if (decl_ == nullptr) return *this;
    decl_->ignores.insert(EventTypeIdOf<E>());
    return *this;
  }

  /// Entry action, synchronous: void M::Fn().
  template <typename M>
  StateBuilder& OnEntry(void (M::*fn)()) {
    if (decl_ == nullptr) return *this;
    decl_->entry.sync = [fn](Machine& m, const Event*) {
      (static_cast<M&>(m).*fn)();
    };
    return *this;
  }

  /// Entry action, coroutine: Task M::Fn().
  template <typename M>
  StateBuilder& OnEntry(Task (M::*fn)()) {
    if (decl_ == nullptr) return *this;
    decl_->entry.coro = [fn](Machine& m, const Event*) {
      return (static_cast<M&>(m).*fn)();
    };
    return *this;
  }

  /// Exit action (always synchronous; P# exit actions cannot block).
  template <typename M>
  StateBuilder& OnExit(void (M::*fn)()) {
    if (decl_ == nullptr) return *this;
    decl_->exit = [fn](Machine& m) { (static_cast<M&>(m).*fn)(); };
    return *this;
  }

 private:
  detail::StateDecl* decl_;
};

template <typename E>
class ReceiveAwaiter;
template <typename... Es>
class ReceiveAnyAwaiter;

namespace detail {
template <typename F>
concept AssertMessageFn = std::is_invocable_r_v<std::string, F&>;
}  // namespace detail

/// Base class for P#-style machines. Subclasses declare their states in the
/// constructor with State(...)/SetStart(...) and interact with the world
/// exclusively through the protected runtime API (Send, Raise, Goto, Create,
/// NondetBool/Int, Receive, Halt, Assert, Notify).
///
/// Declarations are per-TYPE (compiled and shared on first use): a
/// constructor must declare the same states for every instance of the class.
/// Per-instance variation belongs in member data or SetStart.
class Machine {
 public:
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;
  virtual ~Machine() = default;

  [[nodiscard]] MachineId Id() const noexcept { return id_; }
  [[nodiscard]] const std::string& DebugName() const noexcept { return debug_name_; }
  [[nodiscard]] bool Halted() const noexcept { return halted_; }
  /// Crashed by the fault plane: inert like a halted machine (queue wiped,
  /// deliveries dropped) but eligible for a scheduler-controlled restart.
  [[nodiscard]] bool Crashed() const noexcept { return crashed_; }
  /// Opted in as a crash candidate (Runtime::SetCrashable).
  [[nodiscard]] bool Crashable() const noexcept { return crashable_; }
  /// Opted in as a partition candidate (Runtime::SetPartitionable).
  [[nodiscard]] bool Partitionable() const noexcept { return partitionable_; }
  /// Currently isolated by an installed partition: the machine keeps
  /// running, but every delivery between it and any OTHER machine is
  /// silently dropped until the partition heals. Self-sends and harness
  /// sends are exempt, like the rest of the delivery fault plane.
  [[nodiscard]] bool Partitioned() const noexcept { return partitioned_; }
  /// How many times the fault plane restarted this machine.
  [[nodiscard]] std::uint64_t RestartCount() const noexcept {
    return restart_count_;
  }
  [[nodiscard]] const std::string& CurrentStateName() const;
  [[nodiscard]] std::size_t QueueLength() const noexcept { return queue_.Size(); }
  /// Compiled state declarations this instance runs on (shared per type
  /// unless the type opts out — test/introspection use).
  [[nodiscard]] const detail::MachineDecl* StateDecls() const noexcept {
    return decl_;
  }

  /// Dense per-type id of the current state (index into StateDecls()'s state
  /// vector). Only meaningful once the machine has entered a state.
  [[nodiscard]] detail::StateId CurrentStateId() const noexcept {
    return static_cast<detail::StateId>(current_state_ - decl_->states.data());
  }

  /// State-entry counts indexed by dense StateId (start entry, transitions
  /// and restarts all count). Empty unless the owning Runtime was given a
  /// coverage-collecting probe (RuntimeOptions::probe) — sized at attach, so
  /// a non-empty vector always matches StateDecls()'s state count.
  [[nodiscard]] const std::vector<std::uint64_t>& StateVisitCounts()
      const noexcept {
    return state_visits_;
  }

  /// This machine's contribution to the execution fingerprint: id, control
  /// flags, dense current StateId, receive-wait set and queued event-type
  /// ids; `payloads` additionally mixes in FingerprintPayload. Pure — safe
  /// to call at any point between scheduling steps.
  [[nodiscard]] Fingerprint ComputeStateFingerprint(bool payloads) const;

  /// Domain payload hook for stateful exploration: mix any semantic state
  /// (counters, stored values, ...) that distinguishes program states beyond
  /// the default structural view. Default contributes nothing, so the
  /// default view is the current state id plus the queue. Only consulted
  /// when fingerprint_payloads is enabled. The hashed state must be OWNED by
  /// this machine and mutated only in its own handlers (or during harness
  /// setup, before stepping starts) — the incremental fingerprint rehashes a
  /// machine when it steps or receives, so out-of-band mutation through
  /// FindMachine from another machine's handler would go stale.
  virtual void FingerprintPayload(StateHasher& /*hasher*/) const {}

 protected:
  Machine() = default;

  // ---- Declaration API (constructor only) ----

  /// Creates or retrieves the state `name` for further declaration.
  StateBuilder State(std::string name);

  /// Sets the state entered when the machine starts. Per-instance (unlike
  /// the state declarations themselves), so a constructor may pick the start
  /// state from its arguments.
  void SetStart(std::string name) { start_state_ = std::move(name); }

  // ---- Runtime API (handlers only) ----

  /// The runtime this machine is attached to.
  [[nodiscard]] Runtime& Rt() {
    if (runtime_ == nullptr) [[unlikely]] {
      ThrowUnattached();
    }
    return *runtime_;
  }

  /// Non-blocking send: enqueues `ev` into `target`'s queue. (Defined after
  /// Runtime, inline: one hop straight into DeliverEvent.)
  void Send(MachineId target, std::unique_ptr<const Event> ev);

  template <typename E, typename... Args>
  void Send(MachineId target, Args&&... args) {
    Send(target, MakeEvent<E>(std::forward<Args>(args)...));
  }

  /// Raises an event on this machine: handled before any queued event, in
  /// the (possibly new) current state, as part of the same atomic step.
  template <typename E, typename... Args>
  void Raise(Args&&... args) {
    RaiseEvent(MakeEvent<E>(std::forward<Args>(args)...));
  }
  void RaiseEvent(std::unique_ptr<const Event> ev);

  /// Transitions to `state` after the current action completes.
  void Goto(std::string state);

  /// Halts this machine after the current action completes; all queued and
  /// future events are silently dropped (P# halt semantics).
  void Halt() { pending_halt_ = true; }

  /// Controlled nondeterministic choices (PSharp.Nondet()).
  bool NondetBool();
  std::uint64_t NondetInt(std::uint64_t bound);

  /// Creates a machine of type M; it starts concurrently.
  template <typename M, typename... Args>
  MachineId Create(std::string debug_name, Args&&... args);

  /// Notifies monitor type MonitorT with event E (monitors run synchronously).
  template <typename MonitorT, typename E, typename... Args>
  void Notify(Args&&... args);

  /// Fails the execution with a safety violation if `cond` is false. No
  /// message string is assembled when the condition holds.
  void Assert(bool cond, const std::string& message) {
    if (!cond) FailAssert(message);
  }

  /// Lazy-message form for call sites whose message is built from runtime
  /// values: Assert(ok, [&] { return "expected " + std::to_string(x); });
  template <detail::AssertMessageFn F>
  void Assert(bool cond, F&& message_fn) {
    if (!cond) FailAssert(message_fn());
  }

  /// Awaitable: blocks the current coroutine handler until an event of type
  /// E is available in the queue, then dequeues and returns it. Non-matching
  /// events stay queued (P# receive semantics).
  template <typename E>
  [[nodiscard]] ReceiveAwaiter<E> Receive();

  /// Awaitable: waits for the first event whose type is one of Es...
  template <typename... Es>
  [[nodiscard]] ReceiveAnyAwaiter<Es...> ReceiveAny();

  // ---- Fault-plane hooks ----

  /// Invoked when the fault plane crashes this machine, BEFORE the queue and
  /// control state are wiped. The hook models what the crash destroys: reset
  /// members standing in for volatile (in-memory) state here, and Notify any
  /// monitor that needs to learn the node died. Members left untouched model
  /// durable state that survives to a restart. Default: everything survives.
  virtual void OnCrash() {}

  /// Invoked when the fault plane restarts this machine, before the start
  /// state's entry runs (at the machine's next scheduling). Members still
  /// hold whatever OnCrash left — i.e. the durable state. Default: nothing.
  virtual void OnRestart() {}

  // ---- Execution-recycling hook ----

  /// Invoked by Runtime::ResetForNextExecution AFTER the built-in wipe
  /// (queue, control state, receive/coroutine state, fault flags — see
  /// ResetForReuse) so the type restores any member the constructor would
  /// have initialized: counters back to their initial values, containers
  /// cleared, cached ids of mid-execution machines dropped. Only called for
  /// types that declared `static constexpr bool kReusableRuntime = true`
  /// (detail::ReusableRuntime); the default suits types whose members are
  /// either constant after construction or fully covered by the wipe.
  virtual void OnReset() {}

 private:
  friend class Runtime;
  template <typename E>
  friend class ReceiveAwaiter;
  template <typename... Es>
  friend class ReceiveAnyAwaiter;

  [[noreturn]] void FailAssert(const std::string& message);
  [[noreturn]] void ThrowUnattached() const;

  // Receive plumbing (used by the awaiters).
  void BeginReceive(std::initializer_list<EventTypeId> types);
  bool TryFulfillReceive();
  void SetResumePoint(std::coroutine_handle<> h) { resume_point_ = h; }
  std::unique_ptr<const Event> TakeReceived();

  // Step execution (used by the runtime).
  [[nodiscard]] bool IsEnabled() const {
    if (halted_ || crashed_) return false;
    if (!started_) return true;
    if (!root_task_.Valid() &&
        (current_state_ == nullptr || current_state_->defers.Empty())) {
      // Idle in a state with nothing deferrable: any queued event is
      // processable.
      return !queue_.Empty();
    }
    return IsEnabledSlow();
  }
  /// Receive-wait and deferrable-state cases of IsEnabled.
  [[nodiscard]] bool IsEnabledSlow() const;
  /// Memoized IsEnabled: recomputed only after MarkEnabledDirty.
  [[nodiscard]] bool CachedEnabled() {
    if (enabled_dirty_) {
      enabled_cache_ = IsEnabled();
      enabled_dirty_ = false;
    }
    return enabled_cache_;
  }
  void MarkEnabledDirty() noexcept { enabled_dirty_ = true; }
  [[nodiscard]] bool IsWaitingInReceive() const noexcept {
    return !waiting_types_.empty();
  }
  void RunStep();
  void RunCascade();
  void InvokeHandler(const detail::Handler& handler, const Event* event);
  void DispatchEvent(std::unique_ptr<const Event> ev, bool raised);
  void Transition(const std::string& target);
  void TransitionToState(const detail::CompiledState& next);
  void EnterState(const detail::CompiledState& next);
  void DoHalt();
  /// Fault plane: OnCrash hook, then halt-style wipe with crashed_ (not
  /// halted_) set, leaving the machine restartable.
  void DoCrash();
  /// Fault plane: clears crashed_ and re-arms the start state; the start
  /// entry runs when the machine is next scheduled.
  void DoRestart();
  /// Execution recycling: wipes everything an execution mutates (the DoCrash
  /// wipe, generalized — all control flags, receive state, counters,
  /// coverage) back to the just-attached baseline, then runs OnReset so the
  /// type restores its own members. Called only on kReusableRuntime types.
  void ResetForReuse();
  const detail::CompiledState& FindState(const std::string& name) const;
  [[nodiscard]] bool HasMatchingQueuedEvent() const;

  Runtime* runtime_ = nullptr;
  MachineId id_{};
  std::string debug_name_;

  /// Builder-form states, populated by State() in the FIRST instance of the
  /// type only; moved into the shared decl at Attach and empty afterwards.
  std::map<std::string, detail::StateDecl> builder_states_;
  /// Immutable per-type declaration, shared across instances and Runtimes
  /// (or pointing at owned_decl_ for opted-out types).
  const detail::MachineDecl* decl_ = nullptr;
  /// Per-instance decl for types with kShareStateDecls == false.
  std::unique_ptr<const detail::MachineDecl> owned_decl_;
  bool share_decls_ = true;
  std::string start_state_;
  const detail::CompiledState* current_state_ = nullptr;

  detail::EventQueue queue_;
  std::unique_ptr<const Event> current_event_;  // alive while handler runs
  std::unique_ptr<const Event> received_;       // fulfilled Receive result
  std::vector<EventTypeId> waiting_types_;  // non-empty while in Receive
  std::coroutine_handle<> resume_point_{};
  Task root_task_;

  std::unique_ptr<const Event> pending_raise_;
  std::optional<std::string> pending_goto_;
  bool pending_halt_ = false;
  bool started_ = false;
  bool halted_ = false;
  bool crashed_ = false;        // fault plane: inert but restartable
  bool crashable_ = false;      // fault plane: crash-candidate opt-in
  bool partitionable_ = false;  // fault plane: partition-candidate opt-in
  bool partitioned_ = false;    // fault plane: currently isolated
  bool enabled_cache_ = false;
  bool enabled_dirty_ = true;
  bool fp_dirty_ = false;  // queued for contribution rehash (stateful only)
  bool logging_ = false;  // Runtime's options_.logging, cached at attach
  bool reusable_ = false;  // type declared kReusableRuntime (set at create)

  std::uint64_t restart_count_ = 0;
  std::uint64_t transitions_taken_ = 0;
  /// Coverage: entries per dense StateId; empty (and never touched) unless
  /// the Runtime's probe collects coverage.
  std::vector<std::uint64_t> state_visits_;
};

/// Awaitable returned by Machine::Receive<E>().
template <typename E>
class [[nodiscard]] ReceiveAwaiter {
 public:
  explicit ReceiveAwaiter(Machine* machine) : machine_(machine) {}

  bool await_ready() {
    machine_->BeginReceive({EventTypeIdOf<E>()});
    return machine_->TryFulfillReceive();
  }
  void await_suspend(std::coroutine_handle<> h) { machine_->SetResumePoint(h); }
  std::unique_ptr<const E> await_resume() {
    std::unique_ptr<const Event> ev = machine_->TakeReceived();
    return std::unique_ptr<const E>(static_cast<const E*>(ev.release()));
  }

 private:
  Machine* machine_;
};

/// Awaitable returned by Machine::ReceiveAny<Es...>(). Yields the base Event;
/// callers discriminate with Event::Type().
template <typename... Es>
class [[nodiscard]] ReceiveAnyAwaiter {
 public:
  explicit ReceiveAnyAwaiter(Machine* machine) : machine_(machine) {}

  bool await_ready() {
    machine_->BeginReceive({EventTypeIdOf<Es>()...});
    return machine_->TryFulfillReceive();
  }
  void await_suspend(std::coroutine_handle<> h) { machine_->SetResumePoint(h); }
  std::unique_ptr<const Event> await_resume() { return machine_->TakeReceived(); }

 private:
  Machine* machine_;
};

template <typename E>
ReceiveAwaiter<E> Machine::Receive() {
  return ReceiveAwaiter<E>(this);
}

template <typename... Es>
ReceiveAnyAwaiter<Es...> Machine::ReceiveAny() {
  return ReceiveAnyAwaiter<Es...>(this);
}

/// Fluent builder for monitor states (synchronous handlers only; hot/cold
/// attributes drive liveness checking). Inert when the monitor type's
/// declarations are already compiled.
class MonitorStateBuilder {
 public:
  explicit MonitorStateBuilder(detail::MonitorStateDecl* decl) : decl_(decl) {}

  template <typename E, typename M>
  MonitorStateBuilder& On(void (M::*fn)(const E&)) {
    if (decl_ == nullptr) return *this;
    decl_->handlers[EventTypeIdOf<E>()] = [fn](Monitor& m, const Event& e) {
      (static_cast<M&>(m).*fn)(static_cast<const E&>(e));
    };
    return *this;
  }

  template <typename E, typename M>
  MonitorStateBuilder& On(void (M::*fn)()) {
    if (decl_ == nullptr) return *this;
    decl_->handlers[EventTypeIdOf<E>()] = [fn](Monitor& m, const Event&) {
      (static_cast<M&>(m).*fn)();
    };
    return *this;
  }

  template <typename E>
  MonitorStateBuilder& Ignore() {
    if (decl_ == nullptr) return *this;
    decl_->ignores.insert(EventTypeIdOf<E>());
    return *this;
  }

  template <typename M>
  MonitorStateBuilder& OnEntry(void (M::*fn)()) {
    if (decl_ == nullptr) return *this;
    decl_->entry = [fn](Monitor& m) { (static_cast<M&>(m).*fn)(); };
    return *this;
  }

  /// Marks this state hot: the system owes progress while the monitor is
  /// here (§2.5). An execution that stays hot past the liveness temperature
  /// threshold is reported as a liveness violation.
  MonitorStateBuilder& Hot() {
    if (decl_ == nullptr) return *this;
    decl_->hot = true;
    return *this;
  }

  /// Marks this state cold: progress has happened.
  MonitorStateBuilder& Cold() {
    if (decl_ == nullptr) return *this;
    decl_->cold = true;
    return *this;
  }

 private:
  detail::MonitorStateDecl* decl_;
};

/// Base class for safety and liveness monitors (§2.4, §2.5): a monitor can
/// receive notifications but never send; it maintains the history relevant to
/// the property being specified and flags violations via Assert, or via
/// staying in a hot state forever (liveness). Declarations are per-TYPE,
/// like machines'.
class Monitor {
 public:
  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;
  virtual ~Monitor() = default;

  [[nodiscard]] bool IsHot() const;
  [[nodiscard]] const std::string& CurrentStateName() const;
  [[nodiscard]] const std::string& DebugName() const noexcept { return debug_name_; }
  [[nodiscard]] std::uint64_t ConsecutiveHotSteps() const noexcept {
    return hot_steps_;
  }

 protected:
  Monitor() = default;

  MonitorStateBuilder State(std::string name);
  void SetStart(std::string name) { start_state_ = std::move(name); }

  /// Immediate transition (the paper's `jumpto`): runs the target's entry.
  void Goto(const std::string& state);

  /// Safety assertion over the monitor's private state; the message is only
  /// assembled on failure.
  void Assert(bool cond, const std::string& message) {
    if (!cond) FailAssert(message);
  }

  template <detail::AssertMessageFn F>
  void Assert(bool cond, F&& message_fn) {
    if (!cond) FailAssert(message_fn());
  }

  [[nodiscard]] Runtime& Rt();

  /// Execution-recycling hook, mirroring Machine::OnReset: restore any
  /// member the constructor initialized. The built-in wipe already clears
  /// the control state and hot-steps counter; the runtime re-runs Start()
  /// afterwards.
  virtual void OnReset() {}

 private:
  friend class Runtime;

  [[noreturn]] void FailAssert(const std::string& message);

  void Start();
  void HandleNotification(const Event& event);
  /// Execution recycling: back to the just-registered baseline (the runtime
  /// calls Start() again afterwards). Called only on kReusableRuntime types.
  void ResetForReuse();
  const detail::CompiledMonitorState& FindState(const std::string& name) const;

  Runtime* runtime_ = nullptr;
  std::string debug_name_;
  std::map<std::string, detail::MonitorStateDecl> builder_states_;
  const detail::MonitorDecl* decl_ = nullptr;
  std::unique_ptr<const detail::MonitorDecl> owned_decl_;
  bool share_decls_ = true;
  std::string start_state_;
  const detail::CompiledMonitorState* current_state_ = nullptr;
  std::uint64_t hot_steps_ = 0;
  std::uint64_t transitions_taken_ = 0;
  bool reusable_ = false;  // type declared kReusableRuntime (set at register)
};

/// Options controlling one serialized execution.
struct RuntimeOptions {
  std::uint64_t max_steps = 10'000;
  /// Consecutive hot steps after which a bound-terminated execution is
  /// declared a liveness violation. 0 means max_steps / 2.
  std::uint64_t liveness_temperature_threshold = 0;
  bool report_deadlock = true;
  /// Cap on handler cascade length within one step (guards against a
  /// raise/goto loop that would otherwise never yield).
  std::uint64_t max_cascade_actions = 100'000;
  bool logging = false;
  /// Maintain the execution fingerprint incrementally (core/fingerprint.h).
  /// Scheduling semantics are bit-for-bit unchanged either way; off costs
  /// nothing.
  bool stateful = false;
  /// With stateful: also mix each machine's FingerprintPayload into its
  /// contribution (default view is state id + queue only).
  bool fingerprint_payloads = false;
  /// With stateful: additionally record the per-step fingerprint sequence
  /// (FingerprintTrail). Test/debug instrumentation — production stateful
  /// runs keep it off so the step loop does no trail bookkeeping.
  bool record_fingerprint_trail = false;

  // ---- Fault plane (see README "Fault injection") ----
  // All defaults off: a fault-free execution takes one dead branch per step
  // and is otherwise bit-for-bit what it always was.

  /// Per-execution budget of machine crashes (halt-style wipe of a machine
  /// Runtime::SetCrashable opted in, decided by the strategy at step
  /// boundaries). 0 disables crashes.
  std::uint64_t max_crashes = 0;
  /// Per-execution budget of restarts of crashed machines (back to the start
  /// state; members survive per Machine::OnCrash). 0 disables restarts.
  std::uint64_t max_restarts = 0;
  /// Per-delivery drop odds denominator: each machine-to-machine delivery is
  /// dropped with probability 1/den. 0 disables drops.
  std::uint64_t drop_probability_den = 0;
  /// Per-execution budget of message duplications (the event is delivered
  /// twice). 0 disables duplication.
  std::uint64_t max_duplications = 0;
  /// Per-execution budget of network partitions: the strategy may isolate a
  /// machine Runtime::SetPartitionable opted in (every delivery between it
  /// and any other machine is silently dropped) and later heal it as a
  /// separate choice point. 0 disables partitions.
  std::uint64_t max_partitions = 0;
  /// Per-step heal odds denominator: while a partition is installed, the
  /// strategy heals it with probability 1/den per step. 0 disables heals
  /// (installed partitions last until the execution ends).
  std::uint64_t partition_heal_den = 4;
  /// Odds denominator for the budgeted fault rolls (crash/restart/partition
  /// per step, duplication per delivery): each fires with probability 1/den
  /// while budget remains.
  std::uint64_t fault_odds_den = 16;
  /// Replay mode: apply whatever fault decisions the ReplayStrategy reads
  /// from its trace, ignoring the budgets above. Set by
  /// TestingEngine::Replay so fault traces reproduce without any fault
  /// configuration.
  bool replay_faults = false;

  /// Whether this options set turns the fault plane on for exploration.
  [[nodiscard]] bool FaultInjectionEnabled() const noexcept {
    return max_crashes > 0 || drop_probability_den > 0 ||
           max_duplications > 0 || max_partitions > 0;
  }

  // ---- Observability (see README "Observability") ----

  /// Per-execution instrumentation sink (obs/probe.h), owned by the engine's
  /// worker and reset between executions. nullptr (the default) keeps every
  /// instrumentation point one dead branch, mirroring the fault plane's
  /// cheap-when-off pattern. The probe only observes — scheduling, traces
  /// and replay are bit-for-bit identical with or without it.
  obs::ExecutionProbe* probe = nullptr;
};

/// One serialized execution of a machine program. The TestingEngine creates a
/// fresh Runtime per iteration; harnesses populate it with machines and
/// monitors and the engine then steps it to quiescence or the step bound.
class Runtime {
 public:
  Runtime(SchedulingStrategy& strategy, RuntimeOptions options = {});
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;
  ~Runtime();

  // ---- Harness API ----

  /// Creates a machine; it becomes enabled and will run its start state's
  /// entry action when first scheduled. If M's declarations are already
  /// compiled (any earlier instance, in any Runtime), the constructor's
  /// State() calls are skipped wholesale.
  template <typename M, typename... Args>
  MachineId CreateMachine(std::string debug_name, Args&&... args) {
    static_assert(std::is_base_of_v<Machine, M>);
    std::unique_ptr<M> machine;
    if constexpr (detail::SharesStateDecls<M>::value) {
      const detail::MachineDecl* decl =
          detail::DeclRegistry::FindMachineDecl(std::type_index(typeid(M)));
      if (decl != nullptr) {
#ifdef NDEBUG
        const detail::ScopedDeclSkip skip;
        machine = std::make_unique<M>(std::forward<Args>(args)...);
#else
        // Debug builds construct declarations anyway and verify they match
        // the shared decl — the tripwire for a type that varies its state
        // graph per instance without opting out of sharing.
        machine = std::make_unique<M>(std::forward<Args>(args)...);
        detail::VerifyDeclMatches(*decl, machine->builder_states_,
                                  typeid(M).name());
        machine->builder_states_.clear();
#endif
        machine->decl_ = decl;
      } else {
        machine = std::make_unique<M>(std::forward<Args>(args)...);
      }
    } else {
      machine = std::make_unique<M>(std::forward<Args>(args)...);
      machine->share_decls_ = false;
    }
    machine->reusable_ = detail::ReusableRuntime<M>::value;
    return Attach(std::move(machine), std::move(debug_name));
  }

  /// Registers a monitor; its start state is entered immediately. Shares
  /// compiled declarations per monitor type, like CreateMachine.
  template <typename M, typename... Args>
  M& RegisterMonitor(std::string debug_name, Args&&... args) {
    static_assert(std::is_base_of_v<Monitor, M>);
    std::unique_ptr<M> monitor;
    if constexpr (detail::SharesStateDecls<M>::value) {
      const detail::MonitorDecl* decl =
          detail::DeclRegistry::FindMonitorDecl(std::type_index(typeid(M)));
      if (decl != nullptr) {
#ifdef NDEBUG
        const detail::ScopedDeclSkip skip;
        monitor = std::make_unique<M>(std::forward<Args>(args)...);
#else
        monitor = std::make_unique<M>(std::forward<Args>(args)...);
        detail::VerifyMonitorDeclMatches(*decl, monitor->builder_states_,
                                         typeid(M).name());
        monitor->builder_states_.clear();
#endif
        monitor->decl_ = decl;
      } else {
        monitor = std::make_unique<M>(std::forward<Args>(args)...);
      }
    } else {
      monitor = std::make_unique<M>(std::forward<Args>(args)...);
      monitor->share_decls_ = false;
    }
    monitor->reusable_ = detail::ReusableRuntime<M>::value;
    M& ref = *monitor;
    AttachMonitor(std::move(monitor), std::move(debug_name),
                  MonitorTypeIdOf<M>());
    return ref;
  }

  /// Marks `id` as a crash candidate for the fault plane. Harnesses opt
  /// machines in explicitly (usually the modeled nodes, not the monitors'
  /// environment or the driver), so crash budgets never touch machines whose
  /// failure is not part of the scenario's fault model. Callable during
  /// setup or from machine handlers (for machines created mid-execution).
  void SetCrashable(MachineId id, bool crashable = true);

  /// Marks `id` as a partition candidate for the fault plane, mirroring
  /// SetCrashable: harnesses opt the modeled nodes in explicitly so
  /// partition budgets never isolate drivers, clients, or environment
  /// machines whose unreachability is not part of the scenario's fault
  /// model.
  void SetPartitionable(MachineId id, bool partitionable = true);

  /// Injected-fault counts for this execution.
  struct FaultStats {
    std::uint64_t crashes = 0;
    std::uint64_t restarts = 0;
    std::uint64_t drops = 0;
    std::uint64_t duplications = 0;
    std::uint64_t partitions = 0;  ///< partition installs
    std::uint64_t heals = 0;       ///< partition heals

    [[nodiscard]] std::uint64_t Total() const noexcept {
      return crashes + restarts + drops + duplications + partitions + heals;
    }
    FaultStats& operator+=(const FaultStats& other) noexcept {
      crashes += other.crashes;
      restarts += other.restarts;
      drops += other.drops;
      duplications += other.duplications;
      partitions += other.partitions;
      heals += other.heals;
      return *this;
    }
    friend bool operator==(const FaultStats&, const FaultStats&) = default;
  };
  [[nodiscard]] const FaultStats& GetFaultStats() const noexcept {
    return fault_stats_;
  }

  /// Registers a world-level fingerprint probe for shared state no single
  /// machine owns (e.g. a table several machines mutate through a
  /// shared_ptr). Probes are rehashed on EVERY fingerprint read — they
  /// cannot be tracked incrementally — and are only consulted when
  /// options_.fingerprint_payloads is on, like Machine::FingerprintPayload.
  void AddFingerprintProbe(std::function<void(StateHasher&)> probe) {
    fp_probes_.push_back(std::move(probe));
  }

  /// Sends an event from outside any machine (harness setup).
  void SendEvent(MachineId target, std::unique_ptr<const Event> ev);

  template <typename E, typename... Args>
  void SendEvent(MachineId target, Args&&... args) {
    SendEvent(target, MakeEvent<E>(std::forward<Args>(args)...));
  }

  /// Looks up the registered monitor of type M (for end-of-test inspection).
  template <typename M>
  [[nodiscard]] M* FindMonitor() const {
    const EventTypeId id = MonitorTypeIdOf<M>();
    return id < monitors_by_id_.size()
               ? static_cast<M*>(monitors_by_id_[id])
               : nullptr;
  }

  [[nodiscard]] const Machine* FindMachine(MachineId id) const;
  [[nodiscard]] Machine* FindMachine(MachineId id);

  // ---- Engine API ----

  /// Executes one scheduling step. Returns false on quiescence (no machine
  /// enabled). Throws BugFound on a violation.
  bool Step();

  /// End-of-execution property checks (§2.5 liveness heuristic): call with
  /// hit_bound=true when the step bound was reached, false on quiescence.
  void CheckTermination(bool hit_bound);

  [[nodiscard]] std::uint64_t Steps() const noexcept { return steps_; }

  // ---- Stateful exploration (options_.stateful only) ----

  /// Current execution fingerprint: XOR of every live machine's contribution
  /// (monitors are excluded — they observe, they are not program state).
  /// Maintained incrementally: only machines touched since the last call
  /// (the stepped machine, event targets, fresh attaches) are rehashed.
  [[nodiscard]] Fingerprint ExecutionFingerprint();

  /// Recomputes the fingerprint from scratch over all machines — the O(world)
  /// cross-check for the incremental path (tests).
  [[nodiscard]] Fingerprint RecomputeExecutionFingerprint() const;

  /// Post-step fingerprint sequence of this execution, one entry per
  /// scheduling step. Empty unless options_.record_fingerprint_trail.
  [[nodiscard]] const std::vector<Fingerprint>& FingerprintTrail() const noexcept {
    return fp_trail_;
  }
  /// Moves the trail out (engines hand it to ExecutionResult). O(1).
  [[nodiscard]] std::vector<Fingerprint> TakeFingerprintTrail() noexcept {
    return std::move(fp_trail_);
  }

  // ---- Execution recycling (see README "Performance") ----

  /// Seals the post-harness/pre-step world as the reuse baseline. Succeeds
  /// (and returns true) only when no step has run, no decision was recorded,
  /// every machine and monitor came from a kReusableRuntime type, and every
  /// queued setup event is cloneable — otherwise the runtime stays on the
  /// build-per-execution path and this returns false. Engines call it once
  /// after the first harness run; a sealed runtime can then serve the whole
  /// budget through ResetForNextExecution.
  bool SealForReuse();
  [[nodiscard]] bool SealedForReuse() const noexcept { return sealed_; }

  /// Wipes the world back to the sealed baseline IN PLACE: mid-execution
  /// machines/monitors/probes are dropped, surviving machines get the
  /// DoCrash-style wipe plus their OnReset hook, fault/partition opt-ins and
  /// counters are restored, the trace/log/fingerprint/fault state is
  /// cleared, `arena` (when non-null) rewinds its event epoch, monitors
  /// restart, and the sealed setup events are re-delivered — reproducing the
  /// harness's deliveries (probe counts, fingerprint marks) bit-for-bit.
  /// Safe after ANY execution outcome, including a BugFound unwind.
  void ResetForNextExecution(detail::EventArena* arena);

  /// Moves the sealed setup-event prototypes out and unseals. The prototypes
  /// are heap-backed (cloned under ScopedEventArenaPause), so a caller about
  /// to destroy a recycled Runtime while its arena is armed — making every
  /// other Event delete a no-op — must free them AFTER disarming, by taking
  /// them first and letting the returned vector die on the pool path.
  [[nodiscard]] std::vector<std::unique_ptr<const Event>>
  TakeSetupPrototypes() noexcept;

  [[nodiscard]] const Trace& GetTrace() const noexcept { return trace_; }
  /// Moves the recorded decision trace out of a runtime that is about to be
  /// destroyed (the engines call this once per execution). O(1); the
  /// runtime's internal trace is left empty.
  [[nodiscard]] Trace TakeTrace() noexcept { return std::move(trace_); }
  [[nodiscard]] const RuntimeOptions& Options() const noexcept { return options_; }

  // ---- Introspection ----

  struct Stats {
    std::size_t machines = 0;
    std::size_t monitors = 0;
    std::size_t states = 0;
    std::size_t action_handlers = 0;
    std::size_t declared_transitions = 0;  // OnGoto registrations
    std::uint64_t transitions_taken = 0;
  };
  [[nodiscard]] Stats GetStats() const;

  [[nodiscard]] std::size_t MachineCount() const noexcept {
    return machines_.size();
  }
  [[nodiscard]] const std::string& Log() const noexcept { return log_; }

  // ---- Internal API used by Machine / Monitor ----

  /// Hot-path assertion: no message work when `cond` holds.
  void Assert(bool cond, const std::string& message) {
    if (!cond) {
      FailAssert(message);
    }
  }
  template <detail::AssertMessageFn F>
  void Assert(bool cond, F&& message_fn) {
    if (!cond) {
      FailAssert(message_fn());
    }
  }
  [[noreturn]] void FailAssert(const std::string& message);

  [[nodiscard]] bool ChooseBool();
  [[nodiscard]] std::uint64_t ChooseInt(std::uint64_t bound);
  void DeliverEvent(MachineId target, std::unique_ptr<const Event> ev,
                    const Machine* sender);
  MachineId Attach(std::unique_ptr<Machine> machine, std::string debug_name);
  void AttachMonitor(std::unique_ptr<Monitor> monitor, std::string debug_name,
                     EventTypeId monitor_type_id);
  void NotifyMonitorById(EventTypeId monitor_type_id, const Event& event);
  [[nodiscard]] bool LoggingEnabled() const noexcept { return options_.logging; }
  void CountCascadeAction() {
    if (++cascade_actions_ > options_.max_cascade_actions) [[unlikely]] {
      ThrowCascadeOverflow();
    }
  }

  /// Appends one line to the execution log as "[step] part0part1...\n",
  /// building no intermediate strings. Callers gate on LoggingEnabled().
  template <typename... Parts>
  void LogLine(const Parts&... parts) {
    log_ += '[';
    AppendLogPart(log_, steps_);
    log_ += "] ";
    (AppendLogPart(log_, parts), ...);
    log_ += '\n';
  }

 private:
  static void AppendLogPart(std::string& out, std::string_view part) {
    out += part;
  }
  static void AppendLogPart(std::string& out, const std::string& part) {
    out += part;
  }
  static void AppendLogPart(std::string& out, const char* part) {
    out += part;
  }
  static void AppendLogPart(std::string& out, char part) { out += part; }
  static void AppendLogPart(std::string& out, std::uint64_t part) {
    out += std::to_string(part);
  }

  void UpdateMonitorTemperatures();
  [[noreturn]] void ThrowCascadeOverflow() const;

  // Fault plane (called only when fault_mode_).
  /// Crash/restart choice point at the current step boundary: collects
  /// candidates under the remaining budgets (or defers entirely to the trace
  /// under replay_faults), asks the strategy, applies + records the result.
  void MaybeInjectFault();
  void ApplyCrash(MachineId id);
  void ApplyRestart(MachineId id);
  void ApplyPartition(MachineId id);
  void ApplyHeal(MachineId id);
  /// Message-fault choice point for one delivery. Returns true when the
  /// delivery was dropped (the caller then skips the enqueue); a duplication
  /// enqueues the clone here and lets the caller enqueue the original.
  bool ApplyDeliveryFault(Machine& target, const Event& ev);
  /// XOR-mixin of probe digests, fault-budget counters, and the active
  /// partition set (stateful only).
  [[nodiscard]] Fingerprint SharedStateFingerprint() const;

  /// Queues `machine` for a contribution rehash at the next fingerprint
  /// refresh (stateful only; senders call this when they mutate a queue).
  void MarkFingerprintDirty(Machine& machine);
  /// Rehashes every dirty machine's contribution into world_fp_.
  void RefreshFingerprint();

  SchedulingStrategy& strategy_;
  RuntimeOptions options_;
  /// Builtin() of strategy_, cached so Step's scheduling call can be
  /// devirtualized for the dominant final strategies.
  const BuiltinStrategy strategy_builtin_;
  std::vector<std::unique_ptr<Machine>> machines_;  // index = id - 1
  std::vector<std::unique_ptr<Monitor>> monitors_;
  std::vector<Monitor*> monitors_by_id_;  // index = interned monitor type id
  std::vector<MachineId> enabled_scratch_;  // reused by every Step
  Trace trace_;
  std::uint64_t steps_ = 0;
  std::uint64_t cascade_actions_ = 0;
  std::string log_;
  // Stateful-exploration state (empty/unused unless options_.stateful).
  std::vector<Fingerprint> fp_contrib_;      // per machine, index = id - 1
  std::vector<std::uint64_t> fp_dirty_ids_;  // machines awaiting rehash
  std::vector<Fingerprint> fp_trail_;        // post-step world fingerprints
  std::vector<std::function<void(StateHasher&)>> fp_probes_;
  Fingerprint world_fp_ = 0;
  // Fault-plane state (inert unless fault_mode_).
  /// FaultInjectionEnabled() || replay_faults, cached: the per-step and
  /// per-delivery fault hooks are one dead branch when off.
  const bool fault_mode_;
  /// options_.probe, cached: instrumentation points are one dead null-check
  /// when observability is off (same pattern as fault_mode_).
  obs::ExecutionProbe* const probe_;
  FaultStats fault_stats_;
  std::uint64_t delivery_seq_ = 0;      // machine-to-machine delivery ordinal
  std::size_t crashable_machines_ = 0;  // SetCrashable opt-ins
  std::size_t crashed_machines_ = 0;    // currently crashed (restartable)
  std::size_t partitionable_machines_ = 0;  // SetPartitionable opt-ins
  std::size_t partitioned_machines_ = 0;    // currently isolated
  std::vector<MachineId> crash_scratch_;      // crash candidates, reused
  std::vector<MachineId> restart_scratch_;    // restart candidates, reused
  std::vector<MachineId> partition_scratch_;  // partition candidates, reused
  std::vector<MachineId> heal_scratch_;       // heal candidates, reused
  // Execution-recycling seal (SealForReuse / ResetForNextExecution): the
  // post-harness baseline a reset restores. Prototypes are heap-backed
  // clones (taken under ScopedEventArenaPause) so they survive every arena
  // epoch; per-execution clones of them are re-delivered at each reset.
  struct SetupEvent {
    MachineId target;
    std::unique_ptr<const Event> prototype;
  };
  bool sealed_ = false;
  std::size_t sealed_machines_ = 0;
  std::size_t sealed_monitors_ = 0;
  std::size_t sealed_fp_probes_ = 0;
  std::vector<Monitor*> sealed_monitors_by_id_;
  std::vector<SetupEvent> setup_events_;
  std::vector<std::uint8_t> sealed_crashable_;      // per sealed machine
  std::vector<std::uint8_t> sealed_partitionable_;  // per sealed machine
};

// ---- Machine members that need Runtime's definition ----

inline void Machine::Send(MachineId target, std::unique_ptr<const Event> ev) {
  Rt().DeliverEvent(target, std::move(ev), this);
}

template <typename M, typename... Args>
MachineId Machine::Create(std::string debug_name, Args&&... args) {
  return Rt().CreateMachine<M>(std::move(debug_name),
                               std::forward<Args>(args)...);
}

template <typename MonitorT, typename E, typename... Args>
void Machine::Notify(Args&&... args) {
  E event(std::forward<Args>(args)...);
  detail::EventTypeStamp::Set(event, EventTypeIdOf<E>());
  Rt().NotifyMonitorById(MonitorTypeIdOf<MonitorT>(), event);
}

}  // namespace systest
