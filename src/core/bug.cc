#include "core/bug.h"

namespace systest {

std::string_view ToString(BugKind kind) noexcept {
  switch (kind) {
    case BugKind::kSafety:
      return "safety";
    case BugKind::kLiveness:
      return "liveness";
    case BugKind::kDeadlock:
      return "deadlock";
    case BugKind::kUnhandledEvent:
      return "unhandled-event";
    case BugKind::kReplayDivergence:
      return "replay-divergence";
    case BugKind::kHarnessError:
      return "harness-error";
  }
  return "unknown";
}

}  // namespace systest
