// SysTest systematic-testing framework.
//
// EventQueue: FIFO of owned events on one contiguous buffer. Machine inboxes
// are short (usually 0–4 events) and cycle push/pop once per scheduling
// step, which makes std::deque's block bookkeeping pure overhead; a vector
// with a head cursor keeps the hot path at two pointer ops and compacts the
// consumed prefix amortized-O(1).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/event.h"
#include "core/fingerprint.h"

namespace systest::detail {

class EventQueue {
 public:
  [[nodiscard]] bool Empty() const noexcept { return head_ == buf_.size(); }
  [[nodiscard]] std::size_t Size() const noexcept {
    return buf_.size() - head_;
  }

  void PushBack(std::unique_ptr<const Event> ev) {
    buf_.push_back(std::move(ev));
  }

  std::unique_ptr<const Event> PopFront() {
    std::unique_ptr<const Event> ev = std::move(buf_[head_]);
    ++head_;
    MaybeCompact();
    return ev;
  }

  /// Removes and returns the element at `index` (0 = front), preserving the
  /// order of the rest.
  std::unique_ptr<const Event> RemoveAt(std::size_t index) {
    if (index == 0) {
      return PopFront();
    }
    const auto it = buf_.begin() + static_cast<std::ptrdiff_t>(head_ + index);
    std::unique_ptr<const Event> ev = std::move(*it);
    buf_.erase(it);
    return ev;
  }

  void Clear() {
    buf_.clear();
    head_ = 0;
  }

  /// This queue's contribution to a machine's state fingerprint: the length
  /// and the front-to-back sequence of queued event-type ids (payloads are a
  /// machine concern — see Machine::FingerprintPayload).
  void HashTypesInto(StateHasher& hasher) const {
    hasher.Mix(Size());
    for (const auto& ev : *this) {
      hasher.Mix(ev->TypeId());
    }
  }

  // Iteration over the live events, front to back.
  [[nodiscard]] const std::unique_ptr<const Event>* begin() const noexcept {
    return buf_.data() + head_;
  }
  [[nodiscard]] const std::unique_ptr<const Event>* end() const noexcept {
    return buf_.data() + buf_.size();
  }

 private:
  void MaybeCompact() {
    if (head_ == buf_.size()) {
      buf_.clear();
      head_ = 0;
    } else if (head_ >= 32 && head_ * 2 >= buf_.size()) {
      // The consumed prefix dominates the buffer: drop it so a steady
      // producer/consumer pattern cannot grow the buffer without bound.
      buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
  }

  std::vector<std::unique_ptr<const Event>> buf_;
  std::size_t head_ = 0;
};

}  // namespace systest::detail
