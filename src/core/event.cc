#include "core/event.h"

#include <atomic>
#include <cstdlib>

#if defined(__GNUG__)
#include <cxxabi.h>
#endif

namespace systest {

namespace detail {

EventTypeId TypeInternTable::GetOrRegister(std::type_index type) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] =
      ids_.try_emplace(type, static_cast<EventTypeId>(ids_.size() + 1));
  if (inserted) {
    std::string full = DemangleTypeName(type.name());
    const auto pos = full.rfind("::");
    names_.push_back(pos == std::string::npos ? std::move(full)
                                              : full.substr(pos + 2));
  }
  return it->second;
}

std::size_t TypeInternTable::Count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return ids_.size();
}

std::string TypeInternTable::NameOf(EventTypeId id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (id == kInvalidEventTypeId || id > names_.size()) {
    return "?";
  }
  return names_[id - 1];
}

TypeInternTable& EventTypeTable() {
  static TypeInternTable table;
  return table;
}

TypeInternTable& MonitorTypeTable() {
  static TypeInternTable table;
  return table;
}

namespace {

// Clone registry: dense, lock-free array indexed by EventTypeId. The
// capacity bounds the number of distinct event TYPES in a process (not
// instances); ids past the end simply have no clone and are never
// duplicated.
constexpr std::size_t kMaxCloneTypes = 4096;
std::atomic<EventCloneFn> g_clone_fns[kMaxCloneTypes] = {};

}  // namespace

void RegisterEventClone(EventTypeId id, EventCloneFn fn) {
  if (id < kMaxCloneTypes) {
    g_clone_fns[id].store(fn, std::memory_order_relaxed);
  }
}

EventCloneFn CloneFnFor(EventTypeId id) noexcept {
  return id < kMaxCloneTypes ? g_clone_fns[id].load(std::memory_order_relaxed)
                             : nullptr;
}

std::unique_ptr<const Event> CloneEvent(const Event& ev) {
  const EventCloneFn fn = CloneFnFor(ev.TypeId());
  return fn != nullptr ? fn(ev) : nullptr;
}

}  // namespace detail

namespace {

// Event free-list pool: bins of 16 bytes up to 512, bounded per bin so a
// pathological burst cannot pin unbounded memory. Everything is
// thread-local; the destructor returns retained blocks to the system when a
// (worker) thread exits.
constexpr std::size_t kBinStep = 16;
constexpr std::size_t kMaxPooledSize = 512;
constexpr std::size_t kNumBins = kMaxPooledSize / kBinStep;
constexpr std::size_t kMaxPerBin = 1024;

struct EventPool {
  struct FreeList {
    void* head = nullptr;
    std::size_t count = 0;
  };
  FreeList bins[kNumBins];

  ~EventPool() {
    for (FreeList& bin : bins) {
      while (bin.head != nullptr) {
        void* next = *static_cast<void**>(bin.head);
        ::operator delete(bin.head);
        bin.head = next;
      }
    }
  }
};

// Split TLS scheme: the raw pointer is trivially-destructible, so reads
// compile to one fs-relative load instead of the per-access init-guard
// wrapper call a thread_local with a destructor would cost. The owning
// object (and its thread-exit cleanup) lives behind the cold init path; its
// destructor clears the pointer so late frees during thread teardown fall
// back to the global allocator instead of touching freed bins.
struct EventPoolOwner {
  EventPool pool;
  ~EventPoolOwner();
};

thread_local EventPool* g_event_pool = nullptr;

EventPoolOwner::~EventPoolOwner() { g_event_pool = nullptr; }

EventPool* InitEventPool() {
  thread_local EventPoolOwner owner;
  g_event_pool = &owner.pool;
  return &owner.pool;
}

}  // namespace

void* Event::operator new(std::size_t size) {
  if (size <= kMaxPooledSize) {
    EventPool* pool = g_event_pool;
    if (pool == nullptr) [[unlikely]] {
      pool = InitEventPool();
    }
    const std::size_t bin = (size + kBinStep - 1) / kBinStep - 1;
    EventPool::FreeList& list = pool->bins[bin];
    if (list.head != nullptr) {
      void* ptr = list.head;
      list.head = *static_cast<void**>(ptr);
      --list.count;
      return ptr;
    }
    return ::operator new((bin + 1) * kBinStep);
  }
  return ::operator new(size);
}

void Event::operator delete(void* ptr, std::size_t size) noexcept {
  if (ptr == nullptr) {
    return;
  }
  EventPool* pool = g_event_pool;
  if (pool != nullptr && size <= kMaxPooledSize) {
    const std::size_t bin = (size + kBinStep - 1) / kBinStep - 1;
    EventPool::FreeList& list = pool->bins[bin];
    if (list.count < kMaxPerBin) {
      *static_cast<void**>(ptr) = list.head;
      list.head = ptr;
      ++list.count;
      return;
    }
  }
  ::operator delete(ptr);
}

EventTypeId Event::InternTypeId() const {
  const EventTypeId id =
      detail::EventTypeTable().GetOrRegister(std::type_index(typeid(*this)));
  cached_type_id_ = id;
  return id;
}

std::string EventTypeName(EventTypeId id) {
  return detail::EventTypeTable().NameOf(id);
}

std::string DemangleTypeName(const char* mangled) {
#if defined(__GNUG__)
  int status = 0;
  char* demangled = abi::__cxa_demangle(mangled, nullptr, nullptr, &status);
  if (status == 0 && demangled != nullptr) {
    std::string result(demangled);
    std::free(demangled);
    return result;
  }
#endif
  return mangled;
}

std::string ShortTypeName(const std::type_info& info) {
  std::string full = DemangleTypeName(info.name());
  const auto pos = full.rfind("::");
  return pos == std::string::npos ? full : full.substr(pos + 2);
}

std::string Event::Name() const { return ShortTypeName(typeid(*this)); }

}  // namespace systest
