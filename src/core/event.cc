#include "core/event.h"

#include <cstdlib>

#if defined(__GNUG__)
#include <cxxabi.h>
#endif

namespace systest {

std::string DemangleTypeName(const char* mangled) {
#if defined(__GNUG__)
  int status = 0;
  char* demangled = abi::__cxa_demangle(mangled, nullptr, nullptr, &status);
  if (status == 0 && demangled != nullptr) {
    std::string result(demangled);
    std::free(demangled);
    return result;
  }
#endif
  return mangled;
}

std::string ShortTypeName(const std::type_info& info) {
  std::string full = DemangleTypeName(info.name());
  const auto pos = full.rfind("::");
  return pos == std::string::npos ? full : full.substr(pos + 2);
}

std::string Event::Name() const { return ShortTypeName(typeid(*this)); }

}  // namespace systest
