#include "core/event.h"

#include <atomic>
#include <cstdlib>

#include "core/event_arena.h"

#if defined(__GNUG__)
#include <cxxabi.h>
#endif

namespace systest {

namespace detail {

EventTypeId TypeInternTable::GetOrRegister(std::type_index type) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] =
      ids_.try_emplace(type, static_cast<EventTypeId>(ids_.size() + 1));
  if (inserted) {
    std::string full = DemangleTypeName(type.name());
    const auto pos = full.rfind("::");
    names_.push_back(pos == std::string::npos ? std::move(full)
                                              : full.substr(pos + 2));
  }
  return it->second;
}

std::size_t TypeInternTable::Count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return ids_.size();
}

std::string TypeInternTable::NameOf(EventTypeId id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (id == kInvalidEventTypeId || id > names_.size()) {
    return "?";
  }
  return names_[id - 1];
}

TypeInternTable& EventTypeTable() {
  static TypeInternTable table;
  return table;
}

TypeInternTable& MonitorTypeTable() {
  static TypeInternTable table;
  return table;
}

namespace {

// Clone registry: dense, lock-free array indexed by EventTypeId. The
// capacity bounds the number of distinct event TYPES in a process (not
// instances); ids past the end simply have no clone and are never
// duplicated.
constexpr std::size_t kMaxCloneTypes = 4096;
std::atomic<EventCloneFn> g_clone_fns[kMaxCloneTypes] = {};

}  // namespace

void RegisterEventClone(EventTypeId id, EventCloneFn fn) {
  if (id < kMaxCloneTypes) {
    g_clone_fns[id].store(fn, std::memory_order_relaxed);
  }
}

EventCloneFn CloneFnFor(EventTypeId id) noexcept {
  return id < kMaxCloneTypes ? g_clone_fns[id].load(std::memory_order_relaxed)
                             : nullptr;
}

std::unique_ptr<const Event> CloneEvent(const Event& ev) {
  const EventCloneFn fn = CloneFnFor(ev.TypeId());
  return fn != nullptr ? fn(ev) : nullptr;
}

namespace {

// Trivially-destructible TLS (single fs-relative load, no init guard, no
// teardown ordering hazard) — same scheme as g_event_pool below.
thread_local EventArena* g_armed_arena = nullptr;
thread_local EventAllocStats g_alloc_stats;

}  // namespace

EventAllocStats& ThreadEventAllocStats() noexcept { return g_alloc_stats; }

EventArena* ArmedEventArena() noexcept { return g_armed_arena; }

void* EventArena::Allocate(std::size_t size) {
  size = (size + (kAlign - 1)) & ~(kAlign - 1);
  epoch_bytes_ += size;
  EventAllocStats& stats = g_alloc_stats;
  ++stats.arena_allocations;
  if (epoch_bytes_ > stats.arena_bytes_high_water) {
    stats.arena_bytes_high_water = epoch_bytes_;
  }
  if (size > kChunkSize) [[unlikely]] {
    // Dedicated chunk — the matching delete will no-op while armed, so a
    // ::operator new fallback here would leak. The epoch rewind frees it.
    Chunk chunk{std::make_unique<std::byte[]>(size), size};
    void* ptr = chunk.data.get();
    oversize_.push_back(std::move(chunk));
    return ptr;
  }
  while (true) {
    if (current_ < chunks_.size()) {
      Chunk& chunk = chunks_[current_];
      if (offset_ + size <= chunk.size) {
        void* ptr = chunk.data.get() + offset_;
        offset_ += size;
        return ptr;
      }
      ++current_;
      offset_ = 0;
      continue;
    }
    chunks_.push_back(Chunk{std::make_unique<std::byte[]>(kChunkSize),
                            kChunkSize});
  }
}

void EventArena::ResetEpoch() noexcept {
  current_ = 0;
  offset_ = 0;
  epoch_bytes_ = 0;
  oversize_.clear();
}

ScopedEventArenaArm::ScopedEventArenaArm(EventArena* arena) noexcept
    : previous_(g_armed_arena) {
  g_armed_arena = arena;
}

ScopedEventArenaArm::~ScopedEventArenaArm() { g_armed_arena = previous_; }

ScopedEventArenaPause::ScopedEventArenaPause() noexcept
    : previous_(g_armed_arena) {
  g_armed_arena = nullptr;
}

ScopedEventArenaPause::~ScopedEventArenaPause() { g_armed_arena = previous_; }

}  // namespace detail

namespace {

// Event free-list pool: bins of 16 bytes up to 512, bounded per bin so a
// pathological burst cannot pin unbounded memory. Everything is
// thread-local; the destructor returns retained blocks to the system when a
// (worker) thread exits.
constexpr std::size_t kBinStep = 16;
constexpr std::size_t kMaxPooledSize = 512;
constexpr std::size_t kNumBins = kMaxPooledSize / kBinStep;
constexpr std::size_t kMaxPerBin = 1024;

struct EventPool {
  struct FreeList {
    void* head = nullptr;
    std::size_t count = 0;
  };
  FreeList bins[kNumBins];

  ~EventPool() {
    for (FreeList& bin : bins) {
      while (bin.head != nullptr) {
        void* next = *static_cast<void**>(bin.head);
        ::operator delete(bin.head);
        bin.head = next;
      }
    }
  }
};

// Split TLS scheme: the raw pointer is trivially-destructible, so reads
// compile to one fs-relative load instead of the per-access init-guard
// wrapper call a thread_local with a destructor would cost. The owning
// object (and its thread-exit cleanup) lives behind the cold init path; its
// destructor clears the pointer so late frees during thread teardown fall
// back to the global allocator instead of touching freed bins.
struct EventPoolOwner {
  EventPool pool;
  ~EventPoolOwner();
};

thread_local EventPool* g_event_pool = nullptr;

EventPoolOwner::~EventPoolOwner() { g_event_pool = nullptr; }

EventPool* InitEventPool() {
  thread_local EventPoolOwner owner;
  g_event_pool = &owner.pool;
  return &owner.pool;
}

}  // namespace

void* Event::operator new(std::size_t size) {
  // Execution-scoped arena (armed by ExecutionRunner while a recycled
  // Runtime runs one execution): bump-allocate, reclaim in bulk at the
  // execution-end epoch rewind. See core/event_arena.h.
  if (detail::EventArena* arena = detail::ArmedEventArena();
      arena != nullptr) {
    return arena->Allocate(size);
  }
  detail::EventAllocStats& stats = detail::ThreadEventAllocStats();
  if (size <= kMaxPooledSize) {
    EventPool* pool = g_event_pool;
    if (pool == nullptr) [[unlikely]] {
      pool = InitEventPool();
    }
    const std::size_t bin = (size + kBinStep - 1) / kBinStep - 1;
    EventPool::FreeList& list = pool->bins[bin];
    if (list.head != nullptr) {
      void* ptr = list.head;
      list.head = *static_cast<void**>(ptr);
      --list.count;
      ++stats.pool_hits;
      return ptr;
    }
    ++stats.pool_misses;
    return ::operator new((bin + 1) * kBinStep);
  }
  ++stats.pool_misses;
  return ::operator new(size);
}

void Event::operator delete(void* ptr, std::size_t size) noexcept {
  if (ptr == nullptr) {
    return;
  }
  // While an arena is armed, every live event on this thread is arena-backed
  // (heap-backed survivors — the sealed setup prototypes — are only freed
  // after disarming, see Runtime::TakeSetupPrototypes). Freeing is the epoch
  // rewind's job; individual deletes are no-ops.
  if (detail::ArmedEventArena() != nullptr) {
    return;
  }
  EventPool* pool = g_event_pool;
  if (pool != nullptr && size <= kMaxPooledSize) {
    const std::size_t bin = (size + kBinStep - 1) / kBinStep - 1;
    EventPool::FreeList& list = pool->bins[bin];
    if (list.count < kMaxPerBin) {
      *static_cast<void**>(ptr) = list.head;
      list.head = ptr;
      ++list.count;
      return;
    }
  }
  ::operator delete(ptr);
}

EventTypeId Event::InternTypeId() const {
  const EventTypeId id =
      detail::EventTypeTable().GetOrRegister(std::type_index(typeid(*this)));
  cached_type_id_ = id;
  return id;
}

std::string EventTypeName(EventTypeId id) {
  return detail::EventTypeTable().NameOf(id);
}

std::string DemangleTypeName(const char* mangled) {
#if defined(__GNUG__)
  int status = 0;
  char* demangled = abi::__cxa_demangle(mangled, nullptr, nullptr, &status);
  if (status == 0 && demangled != nullptr) {
    std::string result(demangled);
    std::free(demangled);
    return result;
  }
#endif
  return mangled;
}

std::string ShortTypeName(const std::type_info& info) {
  std::string full = DemangleTypeName(info.name());
  const auto pos = full.rfind("::");
  return pos == std::string::npos ? full : full.substr(pos + 2);
}

std::string Event::Name() const { return ShortTypeName(typeid(*this)); }

}  // namespace systest
