// SysTest systematic-testing framework.
//
// Coroutine machinery for machine handlers. A handler may be a plain member
// function (runs to completion atomically, like a P# action) or a coroutine
// returning systest::Task / systest::TaskOf<T>. Coroutine handlers may
// `co_await machine->Receive<E>()` mid-protocol — this is what lets complex
// multi-round protocols (e.g. a MigratingTable logical operation spanning
// several backend operations) be written as straight-line code, exactly the
// role P#'s `receive` plays in the paper's harnesses.
//
// Tasks are lazy (initial_suspend = suspend_always): the runtime decides when
// a handler starts running. Nested awaiting of Tasks is supported through
// symmetric transfer, so protocol code can be factored into sub-coroutines.
//
// COMPILER WORKAROUND (GCC 12.x): a function called directly inside a
// co_await expression must NOT take non-trivially-copyable parameters by
// value — GCC 12 bitwise-copies such arguments into the enclosing coroutine
// frame instead of running their move constructors (strings end up pointing
// into dead frames; see tests/core_coroutine_test.cc which pins the rule).
// Therefore every awaited coroutine in this codebase takes parameters either
// by trivially-copyable value (ints, enums, MachineId) or by const reference;
// const& is safe because the referent — a caller local or a temporary of the
// co_await full-expression — lives in the caller's frame for at least as
// long as the awaited child.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

namespace systest {

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation;  // resumed when this coroutine ends
  std::exception_ptr exception;

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

}  // namespace detail

/// A lazily-started coroutine producing a value of type T (or nothing for
/// void). Owned by whoever holds the Task object; destroying a suspended Task
/// destroys the coroutine frame.
template <typename T>
class [[nodiscard]] TaskOf {
 public:
  struct promise_type : detail::PromiseBase {
    T value{};
    TaskOf get_return_object() {
      return TaskOf(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) { value = std::move(v); }
  };
  using Handle = std::coroutine_handle<promise_type>;

  TaskOf() = default;
  explicit TaskOf(Handle h) : handle_(h) {}
  TaskOf(TaskOf&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  TaskOf& operator=(TaskOf&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  TaskOf(const TaskOf&) = delete;
  TaskOf& operator=(const TaskOf&) = delete;
  ~TaskOf() { Destroy(); }

  [[nodiscard]] bool Valid() const noexcept { return static_cast<bool>(handle_); }
  [[nodiscard]] bool Done() const noexcept { return !handle_ || handle_.done(); }
  [[nodiscard]] std::coroutine_handle<> RawHandle() const noexcept { return handle_; }

  void RethrowIfFailed() {
    if (handle_ && handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
  }

  /// Awaiting a TaskOf starts it (symmetric transfer) and resumes the parent
  /// when it completes, propagating exceptions and the return value.
  auto operator co_await() && noexcept {
    struct Awaiter {
      Handle handle;
      bool await_ready() const noexcept { return !handle || handle.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
        handle.promise().continuation = parent;
        return handle;
      }
      T await_resume() {
        if (handle.promise().exception) {
          std::rethrow_exception(handle.promise().exception);
        }
        return std::move(handle.promise().value);
      }
    };
    return Awaiter{handle_};
  }

 private:
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  Handle handle_;
};

/// Void specialization: the common handler type.
template <>
class [[nodiscard]] TaskOf<void> {
 public:
  struct promise_type : detail::PromiseBase {
    TaskOf get_return_object() {
      return TaskOf(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() noexcept {}
  };
  using Handle = std::coroutine_handle<promise_type>;

  TaskOf() = default;
  explicit TaskOf(Handle h) : handle_(h) {}
  TaskOf(TaskOf&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  TaskOf& operator=(TaskOf&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  TaskOf(const TaskOf&) = delete;
  TaskOf& operator=(const TaskOf&) = delete;
  ~TaskOf() { Destroy(); }

  [[nodiscard]] bool Valid() const noexcept { return static_cast<bool>(handle_); }
  [[nodiscard]] bool Done() const noexcept { return !handle_ || handle_.done(); }
  [[nodiscard]] std::coroutine_handle<> RawHandle() const noexcept { return handle_; }

  void Start() { handle_.resume(); }

  void RethrowIfFailed() {
    if (handle_ && handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
  }

  auto operator co_await() && noexcept {
    struct Awaiter {
      Handle handle;
      bool await_ready() const noexcept { return !handle || handle.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
        handle.promise().continuation = parent;
        return handle;
      }
      void await_resume() {
        if (handle.promise().exception) {
          std::rethrow_exception(handle.promise().exception);
        }
      }
    };
    return Awaiter{handle_};
  }

 private:
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  Handle handle_;
};

using Task = TaskOf<void>;

}  // namespace systest
