// SysTest systematic-testing framework.
//
// Bug classification and the exception used to abort an execution once a
// violation is detected. The testing engine catches BugFound at the top of
// the per-iteration loop and converts it into a TestReport.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace systest {

/// Kind of property violation detected during an execution.
enum class BugKind {
  kSafety,           ///< Machine/monitor assertion failed.
  kLiveness,         ///< Liveness monitor hot past the temperature threshold.
  kDeadlock,         ///< Quiescence while some machine blocks in Receive.
  kUnhandledEvent,   ///< Event dequeued with no handler in the current state.
  kReplayDivergence, ///< Replayed trace diverged from recorded decisions.
  kHarnessError,     ///< Misuse of the framework by the test harness.
};

/// Human-readable name of a BugKind (stable; used in reports and traces).
std::string_view ToString(BugKind kind) noexcept;

/// Thrown (internally) when a property violation is detected. User code never
/// needs to catch this; the TestingEngine does.
class BugFound : public std::runtime_error {
 public:
  BugFound(BugKind kind, const std::string& message)
      : std::runtime_error(message), kind_(kind) {}

  [[nodiscard]] BugKind Kind() const noexcept { return kind_; }

 private:
  BugKind kind_;
};

}  // namespace systest
