#include "core/engine.h"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "api/strategy_registry.h"

namespace systest {

namespace {
using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}
}  // namespace

std::string TestReport::Summary() const {
  std::string out;
  if (bug_found) {
    out += "BUG[" + std::string(ToString(bug_kind)) + "] iter=" +
           std::to_string(bug_iteration) + " time=" +
           std::to_string(seconds_to_bug) + "s ndc=" + std::to_string(ndc) +
           " :: " + bug_message;
  } else {
    out += "no bug in " + std::to_string(executions) + " executions (" +
           std::to_string(total_seconds) + "s)";
  }
  return out;
}

void TestConfig::Validate() const {
  auto fail = [](const std::string& what) {
    throw std::invalid_argument("invalid TestConfig: " + what);
  };
  if (iterations == 0) {
    fail("iterations == 0 (the engine would explore nothing)");
  }
  if (max_steps == 0) {
    fail("max_steps == 0 (every execution would stop before its first step)");
  }
  if (strategy.empty()) {
    fail("strategy name is empty");
  }
  if (time_budget_seconds < 0) {
    fail("time_budget_seconds is negative (use 0 for unlimited)");
  }
  if (liveness_temperature_threshold > max_steps) {
    fail("liveness_temperature_threshold (" +
         std::to_string(liveness_temperature_threshold) +
         ") exceeds max_steps (" + std::to_string(max_steps) +
         "): no execution could ever get hot enough to report");
  }
}

RuntimeOptions MakeRuntimeOptions(const TestConfig& config, bool logging) {
  RuntimeOptions options;
  options.max_steps = config.max_steps;
  options.liveness_temperature_threshold =
      config.liveness_temperature_threshold;
  options.report_deadlock = config.report_deadlock;
  options.logging = logging;
  return options;
}

bool StepToCompletion(Runtime& runtime, const Harness& harness,
                      std::uint64_t max_steps) {
  harness(runtime);
  while (runtime.Steps() < max_steps) {
    if (!runtime.Step()) {
      runtime.CheckTermination(/*hit_bound=*/false);
      return false;
    }
  }
  runtime.CheckTermination(/*hit_bound=*/true);
  return true;
}

ExecutionResult RunOneExecution(const TestConfig& config,
                                const Harness& harness,
                                SchedulingStrategy& strategy,
                                std::uint64_t iteration) {
  ExecutionResult result;
  strategy.PrepareIteration(iteration, config.max_steps);
  Runtime runtime(strategy, MakeRuntimeOptions(config, false));
  try {
    result.hit_step_bound = StepToCompletion(runtime, harness, config.max_steps);
  } catch (const BugFound& bug) {
    result.bug_found = true;
    result.bug_kind = bug.Kind();
    result.bug_message = bug.what();
  }
  result.steps = runtime.Steps();
  result.trace = runtime.TakeTrace();  // O(1): the runtime dies right here
  return result;
}

TestingEngine::TestingEngine(TestConfig config, Harness harness)
    : config_(std::move(config)), harness_(std::move(harness)) {}

TestReport TestingEngine::Run() {
  TestReport report;
  const auto strategy = StrategyRegistry::Instance().Create(
      config_.strategy, config_.seed, config_.strategy_budget);
  report.strategy_name = strategy->Name();
  const auto start = Clock::now();

  for (std::uint64_t iteration = 0; iteration < config_.iterations;
       ++iteration) {
    if (config_.time_budget_seconds > 0 &&
        SecondsSince(start) >= config_.time_budget_seconds) {
      break;
    }
    ++report.executions;
    ExecutionResult result =
        RunOneExecution(config_, harness_, *strategy, iteration);
    report.total_steps += result.steps;
    if (on_iteration_) on_iteration_(iteration, result);
    if (result.bug_found) {
      if (!report.bug_found) {
        // Keep the FIRST violation; with stop_on_first_bug=false later
        // buggy executions only contribute to the execution count.
        report.bug_found = true;
        report.bug_kind = result.bug_kind;
        report.bug_message = result.bug_message;
        report.bug_iteration = iteration + 1;
        report.seconds_to_bug = SecondsSince(start);
        report.ndc = result.trace.Size();
        report.bug_steps = result.steps;
        report.bug_trace = std::move(result.trace);
        if (config_.readable_trace_on_bug) {
          report.execution_log = Replay(report.bug_trace).execution_log;
        }
      }
      if (config_.stop_on_first_bug) {
        break;
      }
    }
  }
  report.total_seconds = SecondsSince(start);
  return report;
}

TestReport TestingEngine::Replay(const Trace& trace) {
  TestReport report;
  ReplayStrategy strategy(trace);
  strategy.PrepareIteration(0, config_.max_steps);
  report.strategy_name = strategy.Name();
  Runtime runtime(strategy, MakeRuntimeOptions(config_, true));
  ++report.executions;
  const auto start = Clock::now();
  try {
    StepToCompletion(runtime, harness_, config_.max_steps);
  } catch (const BugFound& bug) {
    report.bug_found = true;
    report.bug_kind = bug.Kind();
    report.bug_message = bug.what();
    report.bug_iteration = 1;
    report.seconds_to_bug = SecondsSince(start);
    report.ndc = runtime.GetTrace().Size();
    report.bug_steps = runtime.Steps();
    report.bug_trace = runtime.GetTrace();
  }
  report.total_steps = runtime.Steps();
  report.total_seconds = SecondsSince(start);
  report.execution_log = runtime.Log();
  return report;
}

}  // namespace systest
