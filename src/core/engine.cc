#include "core/engine.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <system_error>
#include <utility>

#include "api/strategy_registry.h"
#include "core/event_arena.h"
#include "corpus/trace_corpus.h"
#include "obs/campaign.h"

namespace systest {

namespace {
using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}
}  // namespace

std::string TestReport::Summary() const {
  std::string out;
  if (bug_found) {
    out += "BUG[" + std::string(ToString(bug_kind)) + "] iter=" +
           std::to_string(bug_iteration) + " time=" +
           std::to_string(seconds_to_bug) + "s ndc=" + std::to_string(ndc) +
           " :: " + bug_message;
  } else {
    out += "no bug in " + std::to_string(executions) + " executions (" +
           std::to_string(total_seconds) + "s)";
  }
  if (stateful) {
    char stats[96];
    std::snprintf(stats, sizeof(stats),
                  " [stateful: distinct=%llu pruned=%llu hit-rate=%.1f%%]",
                  static_cast<unsigned long long>(distinct_states),
                  static_cast<unsigned long long>(pruned_executions),
                  FingerprintHitRate() * 100.0);
    out += stats;
  }
  if (faults) {
    char stats[192];
    std::snprintf(
        stats, sizeof(stats),
        " [faults: crashes=%llu restarts=%llu drops=%llu dups=%llu "
        "partitions=%llu heals=%llu]",
        static_cast<unsigned long long>(injected_faults.crashes),
        static_cast<unsigned long long>(injected_faults.restarts),
        static_cast<unsigned long long>(injected_faults.drops),
        static_cast<unsigned long long>(injected_faults.duplications),
        static_cast<unsigned long long>(injected_faults.partitions),
        static_cast<unsigned long long>(injected_faults.heals));
    out += stats;
  }
  return out;
}

void TestConfig::Validate() const {
  auto fail = [](const std::string& what) {
    throw std::invalid_argument("invalid TestConfig: " + what);
  };
  if (iterations == 0) {
    fail("iterations == 0 (the engine would explore nothing)");
  }
  if (max_steps == 0) {
    fail("max_steps == 0 (every execution would stop before its first step)");
  }
  if (strategy.empty()) {
    fail("strategy name is empty");
  }
  if (time_budget_seconds < 0) {
    fail("time_budget_seconds is negative (use 0 for unlimited)");
  }
  if (liveness_temperature_threshold > max_steps) {
    fail("liveness_temperature_threshold (" +
         std::to_string(liveness_temperature_threshold) +
         ") exceeds max_steps (" + std::to_string(max_steps) +
         "): no execution could ever get hot enough to report");
  }
  if (fingerprint_payloads && !stateful) {
    fail("fingerprint_payloads without stateful (payload hashing only "
         "happens inside stateful exploration)");
  }
  if (stateful && max_visited == 0) {
    fail("stateful with max_visited == 0 (a frozen-empty visited set could "
         "never record a state, making stateful a silent no-op)");
  }
  if (stateful && max_visited_hot == 0) {
    fail("stateful with max_visited_hot == 0 (the hot level is where every "
         "novel state lands first; a zero-sized front could never accept "
         "one)");
  }
  if (!visited_spill_dir.empty() && !stateful) {
    fail("visited_spill_dir without stateful (there is no visited set to "
         "spill; the directory would silently never be used)");
  }
  if (stateful && prune_run == 0) {
    fail("stateful with prune_run == 0 (every execution would be pruned at "
         "its first revisited state — including the initial state every "
         "iteration shares)");
  }
  if (max_restarts > 0 && max_crashes == 0) {
    fail("max_restarts > 0 with max_crashes == 0 (nothing can ever crash, "
         "so no restart could ever fire)");
  }
  if (drop_probability_den == 1) {
    fail("drop_probability_den == 1 (every message would be dropped and no "
         "protocol could make progress; use 0 to disable drops)");
  }
  if (partition_heal_den == 1) {
    fail("partition_heal_den == 1 (every partition would heal on the very "
         "next step, making partitions one-step blips; use 0 to disable "
         "heals or >= 2 for a real outage window)");
  }
  if (FaultsEnabled() && fault_odds_den < 2) {
    fail("fault_odds_den < 2 with faults enabled (budgeted faults would all "
         "fire at the first eligible point, exploring a single failure "
         "schedule)");
  }
  if (fault_placement_points < 0) {
    fail("fault_placement_points is negative (use 0 for geometric placement)");
  }
  if (fault_placement_points > 0 && max_crashes == 0 && max_partitions == 0) {
    fail("fault_placement_points > 0 with no crash or partition budget "
         "(pre-sampled placement governs destructive faults only, so "
         "nothing could ever fire at the sampled points)");
  }
  if (corpus_mutation && !stateful) {
    fail("corpus_mutation without stateful (the corpus's interest signal is "
         "the fingerprint-miss count, which only exists under stateful "
         "exploration)");
  }
}

RuntimeOptions MakeRuntimeOptions(const TestConfig& config, bool logging) {
  RuntimeOptions options;
  options.max_steps = config.max_steps;
  options.liveness_temperature_threshold =
      config.liveness_temperature_threshold;
  options.report_deadlock = config.report_deadlock;
  options.logging = logging;
  options.stateful = config.stateful;
  options.fingerprint_payloads = config.fingerprint_payloads;
  options.record_fingerprint_trail = config.record_fingerprint_trail;
  options.max_crashes = config.max_crashes;
  options.max_restarts = config.max_restarts;
  options.drop_probability_den = config.drop_probability_den;
  options.max_duplications = config.max_duplications;
  options.max_partitions = config.max_partitions;
  options.partition_heal_den = config.partition_heal_den;
  options.fault_odds_den = config.fault_odds_den;
  return options;
}

namespace {

/// The scheduling loop of StepToCompletion, entered AFTER the world is set
/// up — by the harness on a fresh Runtime, or by ResetForNextExecution on a
/// recycled one. Both entry points run the identical loop so recycling
/// cannot change semantics.
bool StepFromSetup(Runtime& runtime, std::uint64_t max_steps) {
  while (runtime.Steps() < max_steps) {
    if (!runtime.Step()) {
      runtime.CheckTermination(/*hit_bound=*/false);
      return false;
    }
  }
  runtime.CheckTermination(/*hit_bound=*/true);
  return true;
}

/// Stateful variant of StepFromSetup: after every step the post-step
/// fingerprint is recorded in `visited`; once the execution has spent
/// kFingerprintPruneRun consecutive steps in already-visited states it is
/// pruned (result.pruned) — the schedule has reconverged to territory a
/// prior execution already explored. Pruned executions skip the quiescence /
/// bounded-liveness property checks: they did not actually terminate.
bool StepFromSetupStateful(Runtime& runtime, std::uint64_t max_steps,
                           std::uint64_t prune_run,
                           std::uint64_t prune_holdoff, VisitedSet& visited,
                           ExecutionResult& result) {
  // The post-setup initial state counts as visited too (every execution of a
  // deterministic harness revisits it), but never prunes by itself: the
  // known-run counter only accumulates across scheduling steps.
  if (visited.Insert(runtime.ExecutionFingerprint())) {
    ++result.fingerprint_misses;
  } else {
    ++result.fingerprint_hits;
  }
  std::uint64_t known_run = 0;
  while (runtime.Steps() < max_steps) {
    if (!runtime.Step()) {
      runtime.CheckTermination(/*hit_bound=*/false);
      return false;
    }
    if (visited.Insert(runtime.ExecutionFingerprint())) {
      ++result.fingerprint_misses;
      known_run = 0;
    } else {
      ++result.fingerprint_hits;
      // Below the strategy's holdoff (a corpus prefix deliberately replaying
      // known territory) revisits never accumulate toward pruning.
      if (runtime.Steps() <= prune_holdoff) {
        known_run = 0;
      } else if (++known_run >= prune_run) {
        result.pruned = true;
        return false;
      }
    }
  }
  runtime.CheckTermination(/*hit_bound=*/true);
  return true;
}

bool StepToCompletionStateful(Runtime& runtime, const Harness& harness,
                              std::uint64_t max_steps,
                              std::uint64_t prune_run,
                              std::uint64_t prune_holdoff, VisitedSet& visited,
                              ExecutionResult& result) {
  harness(runtime);
  return StepFromSetupStateful(runtime, max_steps, prune_run, prune_holdoff,
                               visited, result);
}

}  // namespace

bool StepToCompletion(Runtime& runtime, const Harness& harness,
                      std::uint64_t max_steps) {
  harness(runtime);
  return StepFromSetup(runtime, max_steps);
}

ExecutionResult RunOneExecution(const TestConfig& config,
                                const Harness& harness,
                                SchedulingStrategy& strategy,
                                std::uint64_t iteration,
                                VisitedSet* visited, obs::WorkerObs* obs) {
  ExecutionResult result;
  if (config.fault_placement_points > 0) {
    // Arm pre-sampled fault placement before PrepareIteration samples the
    // points (an int store per execution; strategies that don't sample stay
    // on geometric placement).
    strategy.SetFaultPlacementPoints(config.fault_placement_points);
  }
  strategy.PrepareIteration(iteration, config.max_steps);
  RuntimeOptions options = MakeRuntimeOptions(config, false);
  if (obs != nullptr) {
    obs->BeginExecution();
    options.probe = &obs->probe;
  }
  Runtime runtime(strategy, options);
  try {
    if (config.stateful && visited != nullptr) {
      result.hit_step_bound = StepToCompletionStateful(
          runtime, harness, config.max_steps, config.prune_run,
          strategy.PruneHoldoffSteps(), *visited, result);
    } else {
      result.hit_step_bound =
          StepToCompletion(runtime, harness, config.max_steps);
    }
  } catch (const BugFound& bug) {
    result.bug_found = true;
    result.bug_kind = bug.Kind();
    result.bug_message = bug.what();
  }
  result.steps = runtime.Steps();
  result.faults = runtime.GetFaultStats();
  if (obs != nullptr) {
    // Flush while the runtime is still alive: coverage walks its machines.
    obs->FlushExecution(runtime, result, visited);
  }
  result.trace = runtime.TakeTrace();  // O(1): the runtime dies right here
  if (config.stateful && config.record_fingerprint_trail) {
    result.fingerprint_trail = runtime.TakeFingerprintTrail();
  }
  return result;
}

ExecutionRunner::ExecutionRunner(const TestConfig& config,
                                 const Harness& harness,
                                 SchedulingStrategy& strategy,
                                 obs::WorkerObs* obs)
    : config_(config),
      harness_(harness),
      strategy_(strategy),
      obs_(obs),
      options_(MakeRuntimeOptions(config, /*logging=*/false)),
      arena_(std::make_unique<detail::EventArena>()) {
  if (obs_ != nullptr) {
    options_.probe = &obs_->probe;
  }
}

ExecutionRunner::~ExecutionRunner() { DropRecycledRuntime(); }

void ExecutionRunner::DropRecycledRuntime() {
  if (runtime_ == nullptr) {
    return;
  }
  // The sealed setup prototypes are heap/pool-backed and must see REAL
  // deletes, so they are extracted first and die after the disarm below.
  // Everything else the runtime still holds (queued events, coroutine-held
  // events) is arena-backed, so the runtime itself must die while the arena
  // is armed — those deletes have to no-op.
  std::vector<std::unique_ptr<const Event>> prototypes =
      runtime_->TakeSetupPrototypes();
  {
    const detail::ScopedEventArenaArm arm(arena_.get());
    runtime_.reset();
  }
  prototypes.clear();
  arena_->ResetEpoch();
}

void ExecutionRunner::RunBody(Runtime& runtime, bool run_harness,
                              bool try_seal, ExecutionResult& result,
                              VisitedSet* visited) {
  try {
    if (run_harness) {
      harness_(runtime);
    }
    if (try_seal) {
      // Seal AFTER the harness (the setup events to snapshot exist now) and
      // BEFORE the first step (ResetForNextExecution rebuilds exactly the
      // post-harness world). Logging runs keep per-execution "create" log
      // lines that a reset would not reproduce, so they never recycle.
      mode_ = (!options_.logging && runtime.SealForReuse()) ? Mode::kRecycling
                                                            : Mode::kFresh;
    }
    if (config_.stateful && visited != nullptr) {
      result.hit_step_bound = StepFromSetupStateful(
          runtime, config_.max_steps, config_.prune_run,
          strategy_.PruneHoldoffSteps(), *visited, result);
    } else {
      result.hit_step_bound = StepFromSetup(runtime, config_.max_steps);
    }
  } catch (const BugFound& bug) {
    result.bug_found = true;
    result.bug_kind = bug.Kind();
    result.bug_message = bug.what();
  }
  result.steps = runtime.Steps();
  result.faults = runtime.GetFaultStats();
  if (obs_ != nullptr) {
    // Flush while the runtime is still alive: coverage walks its machines.
    obs_->FlushExecution(runtime, result, visited);
  }
  result.trace = runtime.TakeTrace();
  if (config_.stateful && config_.record_fingerprint_trail) {
    result.fingerprint_trail = runtime.TakeFingerprintTrail();
  }
}

ExecutionResult ExecutionRunner::RunOne(std::uint64_t iteration,
                                        VisitedSet* visited) {
  ExecutionResult result;
  if (config_.fault_placement_points > 0) {
    strategy_.SetFaultPlacementPoints(config_.fault_placement_points);
  }
  strategy_.PrepareIteration(iteration, config_.max_steps);
  if (obs_ != nullptr) {
    obs_->BeginExecution();
  }
  switch (mode_) {
    case Mode::kRecycling: {
      const detail::ScopedEventArenaArm arm(arena_.get());
      runtime_->ResetForNextExecution(arena_.get());
      RunBody(*runtime_, /*run_harness=*/false, /*try_seal=*/false, result,
              visited);
      return result;
    }
    case Mode::kProbing: {
      if (arena_ == nullptr) {
        arena_ = std::make_unique<detail::EventArena>();
      }
      {
        // Armed optimistically: if the seal succeeds this execution's live
        // events are already arena-backed, exactly like every later one.
        const detail::ScopedEventArenaArm arm(arena_.get());
        runtime_ = std::make_unique<Runtime>(strategy_, options_);
        RunBody(*runtime_, /*run_harness=*/true, /*try_seal=*/true, result,
                visited);
      }
      if (mode_ != Mode::kRecycling) {
        // Opted out (or the harness itself threw, leaving mode_ at kProbing
        // to retry the seal next time): this probe's runtime dies with its
        // arena, and later executions take the fresh/pool path below.
        DropRecycledRuntime();
      }
      return result;
    }
    case Mode::kFresh:
      break;
  }
  Runtime runtime(strategy_, options_);
  RunBody(runtime, /*run_harness=*/true, /*try_seal=*/false, result, visited);
  return result;
}

TestingEngine::TestingEngine(TestConfig config, Harness harness)
    : config_(std::move(config)), harness_(std::move(harness)) {}

TestReport TestingEngine::Run() {
  TestReport report;
  const auto strategy = StrategyRegistry::Instance().Create(
      config_.strategy, config_.seed, config_.strategy_budget);
  report.strategy_name = strategy->Name();
  TieredOptions visited_options;
  visited_options.max_entries = static_cast<std::size_t>(config_.max_visited);
  visited_options.hot_entries =
      static_cast<std::size_t>(config_.max_visited_hot);
  visited_options.spill_dir = config_.visited_spill_dir;
  if (!visited_options.spill_dir.empty()) {
    // Creation failure is non-fatal: runs then stay in memory.
    std::error_code ec;
    std::filesystem::create_directories(visited_options.spill_dir, ec);
  }
  TieredFingerprintSet visited(visited_options);
  VisitedSet* visited_ptr = config_.stateful ? &visited : nullptr;
  std::unique_ptr<obs::WorkerObs> worker_obs;
  if (metrics_ != nullptr) {
    worker_obs =
        std::make_unique<obs::WorkerObs>(*metrics_, /*worker_index=*/0,
                                         coverage_);
  }
  // One recycled Runtime serves the whole budget when the harness opted in
  // (kReusableRuntime); otherwise the runner transparently builds a fresh
  // Runtime per iteration, exactly the old loop. Declared after strategy /
  // worker_obs: the runner borrows both and must die first.
  ExecutionRunner runner(config_, harness_, *strategy, worker_obs.get());
  const auto start = Clock::now();

  for (std::uint64_t iteration = 0; iteration < config_.iterations;
       ++iteration) {
    if (config_.time_budget_seconds > 0 &&
        SecondsSince(start) >= config_.time_budget_seconds) {
      break;
    }
    ++report.executions;
    ExecutionResult result = runner.RunOne(iteration, visited_ptr);
    report.total_steps += result.steps;
    if (config_.stateful) {
      report.fingerprint_hits += result.fingerprint_hits;
      report.fingerprint_misses += result.fingerprint_misses;
      if (result.pruned) ++report.pruned_executions;
    }
    if (config_.FaultsEnabled()) {
      report.injected_faults += result.faults;
    }
    if (corpus_ != nullptr && config_.stateful &&
        (result.fingerprint_misses > 0 || result.bug_found)) {
      // Feed BEFORE the bug block below moves the trace out. Heat = heatmap
      // cells this execution visited first (0 without coverage collection).
      corpus_->Add(result.trace, result.fingerprint_misses,
                   worker_obs != nullptr ? worker_obs->LastNewStateCells()
                                         : 0);
    }
    if (on_iteration_) on_iteration_(iteration, result);
    if (result.bug_found) {
      if (!report.bug_found) {
        // Keep the FIRST violation; with stop_on_first_bug=false later
        // buggy executions only contribute to the execution count.
        report.bug_found = true;
        report.bug_kind = result.bug_kind;
        report.bug_message = result.bug_message;
        report.bug_iteration = iteration + 1;
        report.seconds_to_bug = SecondsSince(start);
        report.ndc = result.trace.Size();
        report.bug_steps = result.steps;
        report.bug_trace = std::move(result.trace);
        if (config_.readable_trace_on_bug) {
          report.execution_log = Replay(report.bug_trace).execution_log;
        }
      }
      if (config_.stop_on_first_bug) {
        break;
      }
    }
  }
  report.total_seconds = SecondsSince(start);
  if (config_.stateful) {
    report.stateful = true;
    report.distinct_states = visited.Size();
    report.visited_budget = config_.max_visited;
    report.visited = visited.Stats();
  }
  report.faults = config_.FaultsEnabled();
  if (worker_obs != nullptr && coverage_) {
    report.coverage =
        std::make_shared<obs::CoverageReport>(worker_obs->TakeCoverage());
  }
  return report;
}

TestReport TestingEngine::Replay(const Trace& trace) {
  TestReport report;
  ReplayStrategy strategy(trace);
  strategy.PrepareIteration(0, config_.max_steps);
  report.strategy_name = strategy.Name();
  RuntimeOptions options = MakeRuntimeOptions(config_, true);
  // Replay reproduces one recorded witness; it never dedups or prunes, even
  // when the config that FOUND the bug was stateful.
  options.stateful = false;
  // The failure schedule comes from the trace itself — fault decisions are
  // recorded with the step / delivery ordinal they fired at — so replay
  // needs (and takes) no fault configuration: a fault-free trace replays
  // with zero fault queries matched, a fault trace re-applies every recorded
  // fault at its exact coordinate.
  options.replay_faults = true;
  Runtime runtime(strategy, options);
  ++report.executions;
  const auto start = Clock::now();
  try {
    StepToCompletion(runtime, harness_, config_.max_steps);
  } catch (const BugFound& bug) {
    report.bug_found = true;
    report.bug_kind = bug.Kind();
    report.bug_message = bug.what();
    report.bug_iteration = 1;
    report.seconds_to_bug = SecondsSince(start);
    report.ndc = runtime.GetTrace().Size();
    report.bug_steps = runtime.Steps();
    report.bug_trace = runtime.GetTrace();
  }
  report.total_steps = runtime.Steps();
  report.total_seconds = SecondsSince(start);
  report.execution_log = runtime.Log();
  report.injected_faults = runtime.GetFaultStats();
  report.faults = report.injected_faults.Total() > 0;
  if (!report.bug_found) {
    // Expose the re-recorded decision list on clean replays too, so callers
    // (corpus tests, bit-for-bit verification) can compare it against the
    // input trace instead of inferring fidelity from the absence of a
    // divergence report.
    report.bug_trace = runtime.GetTrace();
  }
  return report;
}

}  // namespace systest
