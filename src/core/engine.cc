#include "core/engine.h"

#include <chrono>
#include <utility>

namespace systest {

namespace {
using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}
}  // namespace

std::string TestReport::Summary() const {
  std::string out;
  if (bug_found) {
    out += "BUG[" + std::string(ToString(bug_kind)) + "] iter=" +
           std::to_string(bug_iteration) + " time=" +
           std::to_string(seconds_to_bug) + "s ndc=" + std::to_string(ndc) +
           " :: " + bug_message;
  } else {
    out += "no bug in " + std::to_string(executions) + " executions (" +
           std::to_string(total_seconds) + "s)";
  }
  return out;
}

TestingEngine::TestingEngine(TestConfig config, Harness harness)
    : config_(std::move(config)), harness_(std::move(harness)) {}

RuntimeOptions TestingEngine::MakeRuntimeOptions(bool logging) const {
  RuntimeOptions options;
  options.max_steps = config_.max_steps;
  options.liveness_temperature_threshold =
      config_.liveness_temperature_threshold;
  options.report_deadlock = config_.report_deadlock;
  options.logging = logging;
  return options;
}

bool TestingEngine::ExecuteOnce(Runtime& runtime) {
  harness_(runtime);
  while (runtime.Steps() < config_.max_steps) {
    if (!runtime.Step()) {
      runtime.CheckTermination(/*hit_bound=*/false);
      return false;
    }
  }
  runtime.CheckTermination(/*hit_bound=*/true);
  return true;
}

TestReport TestingEngine::Run() {
  TestReport report;
  const auto strategy =
      MakeStrategy(config_.strategy, config_.seed, config_.strategy_budget);
  report.strategy_name = strategy->Name();
  const auto start = Clock::now();

  for (std::uint64_t iteration = 0; iteration < config_.iterations;
       ++iteration) {
    if (config_.time_budget_seconds > 0 &&
        SecondsSince(start) >= config_.time_budget_seconds) {
      break;
    }
    strategy->PrepareIteration(iteration, config_.max_steps);
    Runtime runtime(*strategy, MakeRuntimeOptions(false));
    ++report.executions;
    try {
      ExecuteOnce(runtime);
      report.total_steps += runtime.Steps();
    } catch (const BugFound& bug) {
      report.total_steps += runtime.Steps();
      if (!report.bug_found) {
        // Keep the FIRST violation; with stop_on_first_bug=false later
        // buggy executions only contribute to the execution count.
        report.bug_found = true;
        report.bug_kind = bug.Kind();
        report.bug_message = bug.what();
        report.bug_iteration = iteration + 1;
        report.seconds_to_bug = SecondsSince(start);
        report.ndc = runtime.GetTrace().Size();
        report.bug_steps = runtime.Steps();
        report.bug_trace = runtime.GetTrace();
        if (config_.readable_trace_on_bug) {
          report.execution_log = Replay(report.bug_trace).execution_log;
        }
      }
      if (config_.stop_on_first_bug) {
        break;
      }
    }
  }
  report.total_seconds = SecondsSince(start);
  return report;
}

TestReport TestingEngine::Replay(const Trace& trace) {
  TestReport report;
  ReplayStrategy strategy(trace);
  strategy.PrepareIteration(0, config_.max_steps);
  report.strategy_name = strategy.Name();
  Runtime runtime(strategy, MakeRuntimeOptions(true));
  ++report.executions;
  const auto start = Clock::now();
  try {
    ExecuteOnce(runtime);
  } catch (const BugFound& bug) {
    report.bug_found = true;
    report.bug_kind = bug.Kind();
    report.bug_message = bug.what();
    report.bug_iteration = 1;
    report.seconds_to_bug = SecondsSince(start);
    report.ndc = runtime.GetTrace().Size();
    report.bug_steps = runtime.Steps();
    report.bug_trace = runtime.GetTrace();
  }
  report.total_steps = runtime.Steps();
  report.total_seconds = SecondsSince(start);
  report.execution_log = runtime.Log();
  return report;
}

}  // namespace systest
