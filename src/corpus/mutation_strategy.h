// SysTest coverage-guided exploration — the "mutate" scheduling strategy.
//
// MutationStrategy closes the fuzzer loop over the TraceCorpus: each
// iteration it samples a stored trace energy-weighted, replays its decision
// prefix up to a seed-chosen divergence point, then applies ONE mutator:
//
//   splice        cut the prefix at a random decision and continue with a
//                 fresh random tail
//   fault-toggle  keep the whole prefix but flip the failure schedule —
//                 remove one recorded fault, or plan an extra crash/partition
//                 at a random step (fired only within the run's budgets and
//                 candidate lists, so the runtime's eligibility contract
//                 holds)
//   delay         cut at a random scheduling decision and avoid the machine
//                 the original trace ran there for the next few picks,
//                 delaying its continuation past its neighbors
//
// Prefix replay is TOLERANT, unlike ReplayStrategy: the mutated execution is
// a different execution, so once the runtime's choice points stop lining up
// with the recorded decisions (a machine no longer enabled, a bound changed,
// a fault decision that cannot fire here) the strategy permanently falls back
// to its random tail instead of throwing kReplayDivergence. Every decision
// the runtime ACTUALLY takes is recorded into the new trace as usual, which
// is why a mutated execution always replays bit-for-bit with plain
// ReplayStrategy and no fault flags.
//
// Determinism: PrepareIteration reseeds from SplitMix64(base_seed +
// iteration) exactly like the built-ins, and corpus sampling consumes words
// from that stream — so (seed, iteration, corpus content) fully determine
// the mutated execution.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/rng.h"
#include "core/strategy.h"
#include "corpus/trace_corpus.h"

namespace systest::corpus {

class MutationStrategy final : public SchedulingStrategy {
 public:
  enum class Mutator : std::uint8_t { kNone, kSplice, kFaultToggle, kDelay };

  /// `corpus` may be null (or empty): the strategy then degrades to pure
  /// random search, which keeps "mutate" usable before any trace has been
  /// fed back. The corpus is borrowed, not owned.
  MutationStrategy(std::uint64_t seed, TraceCorpus* corpus)
      : base_seed_(seed), rng_(seed), corpus_(corpus) {}

  void PrepareIteration(std::uint64_t iteration,
                        std::uint64_t max_steps) override;
  MachineId Next(std::span<const MachineId> enabled,
                 std::uint64_t step) override;
  bool NextBool() override;
  std::uint64_t NextInt(std::uint64_t bound) override;
  FaultDecision NextFault(const FaultContext& ctx) override;
  DeliveryFault NextDeliveryFault(const DeliveryFaultContext& ctx) override;
  [[nodiscard]] std::string Name() const override { return "mutate"; }

  /// Scheduling steps covered by the replayed prefix: the engine suspends
  /// known-state pruning below this step so the prefix — which by
  /// construction walks through already-visited states — is not mistaken
  /// for a reconverged schedule before the mutation ever diverges.
  [[nodiscard]] std::uint64_t PruneHoldoffSteps() const noexcept override {
    return holdoff_steps_;
  }

  // Introspection for tests.
  [[nodiscard]] Mutator CurrentMutator() const noexcept { return mutator_; }
  [[nodiscard]] std::size_t PrefixSize() const noexcept {
    return prefix_.size();
  }
  [[nodiscard]] bool PrefixActive() const noexcept { return prefix_active_; }

 private:
  /// Next prefix decision a non-fault choice point should consume, or null
  /// once replay is over. Fault decisions parked at the cursor that can no
  /// longer fire (their coordinate has passed, or this run's fault plane
  /// never queried them) are skipped; a kind mismatch diverges.
  const Decision* PeekKind(Decision::Kind kind);
  void ConsumePrefix();
  void Diverge() noexcept;

  std::uint64_t base_seed_;
  Xoshiro256 rng_;
  TraceCorpus* corpus_;

  std::vector<Decision> prefix_;
  std::size_t cursor_ = 0;
  bool prefix_active_ = false;
  Mutator mutator_ = Mutator::kNone;
  std::uint64_t holdoff_steps_ = 0;

  // delay mutator: skip this machine for the next few post-prefix picks
  std::uint64_t avoid_machine_ = 0;
  std::uint64_t avoid_remaining_ = 0;

  // fault-toggle mutator (add direction): one planned extra fault
  bool pending_fault_ = false;
  bool pending_is_partition_ = false;
  std::uint64_t pending_step_ = 0;
};

}  // namespace systest::corpus
