// SysTest coverage-guided exploration — TraceCorpus implementation.

#include "corpus/trace_corpus.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace systest::corpus {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t FnvMix(std::uint64_t hash, std::uint64_t word) noexcept {
  for (int i = 0; i < 8; ++i) {
    hash ^= (word >> (i * 8)) & 0xff;
    hash *= kFnvPrime;
  }
  return hash;
}

std::atomic<TraceCorpus*> g_active_corpus{nullptr};

}  // namespace

TraceCorpus* ActiveCorpus() noexcept {
  return g_active_corpus.load(std::memory_order_acquire);
}

void SetActiveCorpus(TraceCorpus* corpus) noexcept {
  g_active_corpus.store(corpus, std::memory_order_release);
}

TraceCorpus::TraceCorpus(std::size_t max_entries)
    : max_entries_(std::max<std::size_t>(max_entries, kShards)) {}

std::uint64_t TraceCorpus::HashOf(const Trace& trace) noexcept {
  std::uint64_t hash = kFnvOffset;
  for (const Decision& d : trace.Decisions()) {
    hash = FnvMix(hash, static_cast<std::uint64_t>(d.kind));
    hash = FnvMix(hash, d.value);
    hash = FnvMix(hash, d.bound);
  }
  return hash;
}

std::uint64_t TraceCorpus::Energy(std::uint64_t new_states, std::uint64_t heat,
                                  std::uint64_t spawned) noexcept {
  // Cap the base so a single saturating execution (vnext can miss tens of
  // thousands of fingerprints) cannot make the rest of the corpus invisible.
  constexpr std::uint64_t kBaseCap = 1u << 16;
  constexpr std::uint64_t kDecay = 8;  // half weight after 8 spawns
  const std::uint64_t base =
      std::min<std::uint64_t>(1 + new_states + 4 * heat, kBaseCap);
  return std::max<std::uint64_t>(base * kDecay / (kDecay + spawned), 1);
}

bool TraceCorpus::Add(const Trace& trace, std::uint64_t new_states,
                      std::uint64_t heat) {
  Entry entry;
  entry.trace = trace;
  entry.hash = HashOf(trace);
  entry.new_states = new_states;
  entry.heat = heat;
  return AddEntry(std::move(entry), /*loaded=*/false);
}

bool TraceCorpus::AddEntry(Entry entry, bool loaded) {
  Shard& shard = shards_[ShardOf(entry.hash)];
  const std::uint64_t new_states = entry.new_states;
  bool evict = false;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.hashes.contains(entry.hash)) {
      duplicates_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (count_.load(std::memory_order_relaxed) >= max_entries_) {
      // At the cap: replace this shard's lowest-energy entry, but only if
      // the newcomer carries strictly more energy — otherwise reject so a
      // full corpus of champions is not churned by marginal traces.
      if (shard.entries.empty()) return false;
      auto victim = std::min_element(
          shard.entries.begin(), shard.entries.end(),
          [](const Entry& a, const Entry& b) {
            return Energy(a.new_states, a.heat, a.spawned) <
                   Energy(b.new_states, b.heat, b.spawned);
          });
      if (Energy(entry.new_states, entry.heat, entry.spawned) <=
          Energy(victim->new_states, victim->heat, victim->spawned)) {
        return false;
      }
      shard.hashes.erase(victim->hash);
      total_new_states_.fetch_sub(victim->new_states,
                                  std::memory_order_relaxed);
      *victim = std::move(entry);
      shard.hashes.insert(victim->hash);
      evict = true;
    } else {
      shard.hashes.insert(entry.hash);
      shard.entries.push_back(std::move(entry));
      shard.count.store(static_cast<std::uint32_t>(shard.entries.size()),
                        std::memory_order_relaxed);
      count_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (evict) evicted_.fetch_add(1, std::memory_order_relaxed);
  added_.fetch_add(1, std::memory_order_relaxed);
  if (loaded) loaded_.fetch_add(1, std::memory_order_relaxed);
  total_new_states_.fetch_add(new_states, std::memory_order_relaxed);
  return true;
}

std::optional<Trace> TraceCorpus::Sample(std::uint64_t draw_shard,
                                         std::uint64_t draw_entry) {
  const std::size_t total = count_.load(std::memory_order_relaxed);
  if (total == 0) return std::nullopt;

  // Two-level pick: walk shards consuming `target` against their (relaxed)
  // entry counts so bigger shards are proportionally likelier, then wrap
  // around until one is actually non-empty — counts may be stale under
  // concurrent adds, so the walk is best-effort, never wrong.
  std::uint64_t target = draw_shard % total;
  std::size_t start = 0;
  for (std::size_t i = 0; i < kShards; ++i) {
    const std::uint64_t c = shards_[i].count.load(std::memory_order_relaxed);
    if (target < c) {
      start = i;
      break;
    }
    target -= c;
  }
  for (std::size_t probe = 0; probe < kShards; ++probe) {
    Shard& shard = shards_[(start + probe) % kShards];
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.entries.empty()) continue;
    std::uint64_t total_energy = 0;
    for (const Entry& e : shard.entries) {
      total_energy += Energy(e.new_states, e.heat, e.spawned);
    }
    std::uint64_t pick = draw_entry % total_energy;
    for (Entry& e : shard.entries) {
      const std::uint64_t energy = Energy(e.new_states, e.heat, e.spawned);
      if (pick < energy) {
        ++e.spawned;
        sampled_.fetch_add(1, std::memory_order_relaxed);
        return e.trace;
      }
      pick -= energy;
    }
  }
  return std::nullopt;
}

CorpusStats TraceCorpus::Stats() const {
  CorpusStats stats;
  stats.entries = count_.load(std::memory_order_relaxed);
  stats.added = added_.load(std::memory_order_relaxed);
  stats.duplicates = duplicates_.load(std::memory_order_relaxed);
  stats.evicted = evicted_.load(std::memory_order_relaxed);
  stats.sampled = sampled_.load(std::memory_order_relaxed);
  stats.loaded = loaded_.load(std::memory_order_relaxed);
  stats.total_new_states = total_new_states_.load(std::memory_order_relaxed);
  return stats;
}

std::vector<CorpusEntrySnapshot> TraceCorpus::Snapshot() const {
  std::vector<CorpusEntrySnapshot> out;
  out.reserve(count_.load(std::memory_order_relaxed));
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const Entry& e : shard.entries) {
      out.push_back({e.hash, e.new_states, e.heat, e.spawned,
                     Energy(e.new_states, e.heat, e.spawned),
                     e.trace.Size()});
    }
  }
  return out;
}

namespace {

std::string TraceFileName(std::uint64_t hash) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "t%016llx.trace",
                static_cast<unsigned long long>(hash));
  return buf;
}

}  // namespace

std::size_t TraceCorpus::SaveDir(const std::string& dir) const {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    throw std::runtime_error("corpus: cannot create directory " + dir + ": " +
                             ec.message());
  }

  std::ostringstream index_body;
  std::size_t written = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const Entry& e : shard.entries) {
      const std::string file = TraceFileName(e.hash);
      e.trace.SaveFile((fs::path(dir) / file).string());
      index_body << std::hex << e.hash << std::dec << ' ' << e.new_states
                 << ' ' << e.heat << ' ' << e.spawned << ' ' << file << '\n';
      ++written;
    }
  }

  const std::string index_path = (fs::path(dir) / "corpus.index").string();
  std::ofstream out(index_path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("corpus: cannot write " + index_path);
  }
  out << "systest-corpus v1 " << written << '\n' << index_body.str();
  if (!out.flush()) {
    throw std::runtime_error("corpus: write failed for " + index_path);
  }
  return written;
}

std::size_t TraceCorpus::LoadDir(const std::string& dir) {
  namespace fs = std::filesystem;
  std::ifstream in((fs::path(dir) / "corpus.index").string());
  if (!in) return 0;  // cold start: no corpus yet at this path

  std::string magic, version;
  std::size_t declared = 0;
  if (!(in >> magic >> version >> declared) || magic != "systest-corpus" ||
      version != "v1") {
    throw std::invalid_argument("corpus: malformed index in " + dir);
  }

  std::size_t restored = 0;
  for (std::size_t i = 0; i < declared; ++i) {
    std::uint64_t hash = 0;
    Entry entry;
    std::string file;
    if (!(in >> std::hex >> hash >> std::dec >> entry.new_states >>
          entry.heat >> entry.spawned >> file)) {
      throw std::invalid_argument("corpus: truncated index in " + dir);
    }
    try {
      entry.trace = Trace::LoadFile((fs::path(dir) / file).string());
    } catch (const std::exception&) {
      continue;  // skip unreadable entries: a partial corpus beats none
    }
    // Trust the recomputed hash over the stored one so a hand-edited trace
    // file still dedups correctly against live additions.
    entry.hash = HashOf(entry.trace);
    if (AddEntry(std::move(entry), /*loaded=*/true)) ++restored;
  }
  return restored;
}

}  // namespace systest::corpus
