// SysTest coverage-guided exploration (README "Coverage-guided exploration").
//
// TraceCorpus: a deduplicated, energy-weighted store of "interesting" traces
// — executions whose fingerprint-miss count (new program states, PR 4) or
// coverage delta (newly visited heatmap cells, PR 6) was nonzero. The corpus
// closes the feedback loop fuzzer-style: engines feed every newly-interesting
// trace back in, and the MutationStrategy ("mutate") samples entries
// energy-weighted, replays a decision prefix and diverges with one mutator.
//
// Concurrency mirrors explore/sharded_fingerprint_set.h: the trace hash picks
// one of 16 independently locked shards, so parallel workers adding and
// sampling only contend when they land on the same shard at the same instant.
// Sampling is a two-level approximation — shard chosen proportional to entry
// counts (relaxed atomics), entry chosen energy-weighted under that shard's
// lock — which keeps the sample path off any global lock.
//
// Persistence (`--corpus-dir`): one trace file per entry in the existing
// durable trace format (v1/v2/v3 picked per trace by Trace::Serialize) plus a
// "corpus.index" metadata line per entry, so multi-hour campaigns resume with
// the corpus — and the energy bookkeeping — they left off with.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/trace.h"

namespace systest::corpus {

/// Aggregate corpus counters, uniform across serial and parallel runs
/// (reported by HumanReporter/JsonReporter when a session arms the corpus).
struct CorpusStats {
  std::uint64_t entries = 0;           ///< traces currently stored
  std::uint64_t added = 0;             ///< Add() calls that stored a new trace
  std::uint64_t duplicates = 0;        ///< Add() calls rejected as duplicates
  std::uint64_t evicted = 0;           ///< low-energy entries replaced at cap
  std::uint64_t sampled = 0;           ///< Sample() calls that returned a trace
  std::uint64_t loaded = 0;            ///< entries restored by LoadDir
  std::uint64_t total_new_states = 0;  ///< sum of per-entry discovery counts
};

/// One stored entry's energy inputs (tests and stats tooling; the trace
/// itself is not copied out).
struct CorpusEntrySnapshot {
  std::uint64_t hash = 0;
  std::uint64_t new_states = 0;  ///< fingerprint misses the execution scored
  std::uint64_t heat = 0;        ///< heatmap cells it visited first
  std::uint64_t spawned = 0;     ///< times it has been sampled for mutation
  std::uint64_t energy = 0;      ///< current effective sampling weight
  std::size_t decisions = 0;     ///< trace length
};

/// Thread-safe, capped, energy-weighted trace store. See file comment.
class TraceCorpus {
 public:
  static constexpr std::size_t kDefaultMaxEntries = 1024;

  explicit TraceCorpus(std::size_t max_entries = kDefaultMaxEntries);

  /// FNV-1a over the decision list — the dedup identity of a trace.
  [[nodiscard]] static std::uint64_t HashOf(const Trace& trace) noexcept;

  /// Effective sampling weight: discovery-proportional base
  /// (1 + new_states + 4*heat, so traces that reached UNDER-VISITED heatmap
  /// states outweigh ones that merely found new fingerprints) with harmonic
  /// decay in `spawned` — an entry that has seeded many mutations loses
  /// weight, so stale corpus champions stop dominating the sample stream.
  [[nodiscard]] static std::uint64_t Energy(std::uint64_t new_states,
                                           std::uint64_t heat,
                                           std::uint64_t spawned) noexcept;

  /// Stores a copy of `trace` keyed by HashOf. Returns false for duplicates
  /// and for traces that lose the eviction fight at the cap (the target
  /// shard's lowest-energy entry is replaced only when the newcomer's energy
  /// is strictly higher). `new_states`/`heat` are the execution's discovery
  /// counts — callers only feed traces where at least one is nonzero.
  bool Add(const Trace& trace, std::uint64_t new_states, std::uint64_t heat);

  /// Energy-weighted sample: returns a copy of a stored trace and bumps its
  /// spawned count (decay). `draw_shard`/`draw_entry` are caller-supplied
  /// random words so determinism stays in the caller's seed stream. Empty
  /// corpus returns nullopt.
  [[nodiscard]] std::optional<Trace> Sample(std::uint64_t draw_shard,
                                            std::uint64_t draw_entry);

  [[nodiscard]] std::size_t Size() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] CorpusStats Stats() const;

  /// Per-entry view (unordered), for tests and stats tooling.
  [[nodiscard]] std::vector<CorpusEntrySnapshot> Snapshot() const;

  /// Persists every entry under `dir` (created if missing): one
  /// "t<hash>.trace" file per entry plus a "corpus.index" metadata file
  /// ("systest-corpus v1 <n>" header, then one "<hash> <new_states> <heat>
  /// <spawned> <file>" line per entry). Returns entries written; throws
  /// std::runtime_error on I/O failure.
  std::size_t SaveDir(const std::string& dir) const;

  /// Loads a SaveDir directory, restoring energy bookkeeping. Duplicates of
  /// already-stored traces are skipped; unreadable trace files are skipped
  /// (a partial corpus is better than none). A missing directory or index is
  /// not an error — returns 0, so first runs with --corpus-dir start cold.
  /// Returns entries restored.
  std::size_t LoadDir(const std::string& dir);

 private:
  struct Entry {
    Trace trace;
    std::uint64_t hash = 0;
    std::uint64_t new_states = 0;
    std::uint64_t heat = 0;
    std::uint64_t spawned = 0;
  };

  static constexpr std::size_t kShards = 16;

  static std::size_t ShardOf(std::uint64_t hash) noexcept {
    return static_cast<std::size_t>(hash & (kShards - 1));
  }

  struct alignas(64) Shard {  // own cache line: no false sharing across locks
    mutable std::mutex mutex;
    std::vector<Entry> entries;
    std::unordered_set<std::uint64_t> hashes;
    std::atomic<std::uint32_t> count{0};  ///< entries.size(), lock-free read
  };

  bool AddEntry(Entry entry, bool loaded);

  std::size_t max_entries_;
  std::atomic<std::size_t> count_{0};
  std::atomic<std::uint64_t> added_{0};
  std::atomic<std::uint64_t> duplicates_{0};
  std::atomic<std::uint64_t> evicted_{0};
  std::atomic<std::uint64_t> sampled_{0};
  std::atomic<std::uint64_t> loaded_{0};
  std::atomic<std::uint64_t> total_new_states_{0};
  Shard shards_[kShards];
};

/// Process-global active-corpus handle. StrategyRegistry factories receive
/// only (seed, budget) — the fixed registry signature every strategy shares —
/// so the "mutate" factory reaches the session's corpus through this handle.
/// TestSession installs its corpus for the duration of Run() via
/// ScopedActiveCorpus; a null active corpus makes "mutate" degrade to pure
/// random search.
[[nodiscard]] TraceCorpus* ActiveCorpus() noexcept;
void SetActiveCorpus(TraceCorpus* corpus) noexcept;

/// RAII installer: sets the active corpus, restores the previous one on
/// destruction (sessions nest correctly in tests).
class ScopedActiveCorpus {
 public:
  explicit ScopedActiveCorpus(TraceCorpus* corpus)
      : previous_(ActiveCorpus()) {
    SetActiveCorpus(corpus);
  }
  ~ScopedActiveCorpus() { SetActiveCorpus(previous_); }
  ScopedActiveCorpus(const ScopedActiveCorpus&) = delete;
  ScopedActiveCorpus& operator=(const ScopedActiveCorpus&) = delete;

 private:
  TraceCorpus* previous_;
};

}  // namespace systest::corpus
