// SysTest coverage-guided exploration — MutationStrategy implementation.

#include "corpus/mutation_strategy.h"

#include <algorithm>

#include "api/strategy_registry.h"

namespace systest::corpus {

void MutationStrategy::PrepareIteration(std::uint64_t iteration,
                                        std::uint64_t max_steps) {
  std::uint64_t state = base_seed_ + iteration;
  rng_.Reseed(SplitMix64(state));
  prefix_.clear();
  cursor_ = 0;
  prefix_active_ = false;
  mutator_ = Mutator::kNone;
  holdoff_steps_ = 0;
  avoid_machine_ = 0;
  avoid_remaining_ = 0;
  pending_fault_ = false;
  // Placement points (if configured) are sampled from the reseeded stream
  // BEFORE the prefix exists, so the NextInt draws below go to the rng.
  SampleFaultPlacement(max_steps);

  if (corpus_ == nullptr || corpus_->Size() == 0) return;
  auto sampled = corpus_->Sample(rng_.Next(), rng_.Next());
  if (!sampled.has_value() || sampled->Empty()) return;
  const std::vector<Decision>& decisions = sampled->Decisions();

  switch (rng_.NextBelow(3)) {
    case 0: {  // splice: prefix up to a random cut, fresh random tail after
      mutator_ = Mutator::kSplice;
      const std::size_t cut = static_cast<std::size_t>(
          rng_.NextBelow(decisions.size() + 1));
      prefix_.assign(decisions.begin(), decisions.begin() + cut);
      break;
    }
    case 1: {  // fault toggle: keep the whole prefix, flip one fault
      mutator_ = Mutator::kFaultToggle;
      prefix_ = decisions;
      std::vector<std::size_t> fault_at;
      for (std::size_t i = 0; i < prefix_.size(); ++i) {
        if (prefix_[i].IsFault()) fault_at.push_back(i);
      }
      if (!fault_at.empty() && rng_.NextBool()) {
        // Remove: the schedule up to the removed fault replays unchanged,
        // then the execution diverges into the fault-free continuation.
        prefix_.erase(prefix_.begin() + static_cast<std::ptrdiff_t>(
                          fault_at[rng_.NextBelow(fault_at.size())]));
      } else {
        // Add: plan one extra crash/partition at a random step; it fires
        // through NextFault only when the runtime offers candidates of that
        // kind (budget remains), so budgets are never exceeded.
        pending_fault_ = true;
        pending_is_partition_ = rng_.NextBool();
        pending_step_ = rng_.NextBelow(std::max<std::uint64_t>(1, max_steps));
      }
      break;
    }
    default: {  // delay: cut at a scheduling decision, dodge its machine
      mutator_ = Mutator::kDelay;
      std::vector<std::size_t> sched_at;
      for (std::size_t i = 0; i < decisions.size(); ++i) {
        if (decisions[i].kind == Decision::Kind::kSchedule) {
          sched_at.push_back(i);
        }
      }
      if (sched_at.empty()) {
        prefix_.clear();
        break;
      }
      const std::size_t cut = sched_at[rng_.NextBelow(sched_at.size())];
      prefix_.assign(decisions.begin(),
                     decisions.begin() + static_cast<std::ptrdiff_t>(cut));
      avoid_machine_ = decisions[cut].value;
      avoid_remaining_ = 1 + rng_.NextBelow(4);
      break;
    }
  }

  prefix_active_ = !prefix_.empty();
  if (prefix_active_) {
    holdoff_steps_ = static_cast<std::uint64_t>(
        std::count_if(prefix_.begin(), prefix_.end(), [](const Decision& d) {
          return d.kind == Decision::Kind::kSchedule;
        }));
  }
}

const Decision* MutationStrategy::PeekKind(Decision::Kind kind) {
  while (prefix_active_) {
    if (cursor_ >= prefix_.size()) {
      prefix_active_ = false;
      break;
    }
    const Decision& d = prefix_[cursor_];
    if (d.IsFault()) {
      // A fault decision still parked here when a non-fault choice point
      // fires can never fire again (its step / delivery ordinal has passed,
      // or this run's fault plane never queried it). Skip it and keep
      // replaying — dropping one fault is itself a useful mutation.
      ++cursor_;
      continue;
    }
    if (d.kind != kind) {
      Diverge();
      break;
    }
    return &d;
  }
  return nullptr;
}

void MutationStrategy::ConsumePrefix() {
  if (++cursor_ >= prefix_.size()) prefix_active_ = false;
}

void MutationStrategy::Diverge() noexcept { prefix_active_ = false; }

MachineId MutationStrategy::Next(std::span<const MachineId> enabled,
                                 std::uint64_t /*step*/) {
  if (const Decision* d = PeekKind(Decision::Kind::kSchedule)) {
    const MachineId id{d->value};
    if (std::binary_search(enabled.begin(), enabled.end(), id)) {
      ConsumePrefix();
      return id;
    }
    Diverge();  // mutation changed the enabled set: random tail from here
  }
  if (avoid_remaining_ > 0) {
    --avoid_remaining_;
    if (enabled.size() > 1) {
      std::size_t pick = static_cast<std::size_t>(
          rng_.NextBelow(enabled.size()));
      if (enabled[pick].value == avoid_machine_) {
        pick = (pick + 1) % enabled.size();
      }
      return enabled[pick];
    }
  }
  return enabled[rng_.NextBelow(enabled.size())];
}

bool MutationStrategy::NextBool() {
  if (const Decision* d = PeekKind(Decision::Kind::kBool)) {
    const bool value = d->value != 0;
    ConsumePrefix();
    return value;
  }
  return rng_.NextBool();
}

std::uint64_t MutationStrategy::NextInt(std::uint64_t bound) {
  if (const Decision* d = PeekKind(Decision::Kind::kInt)) {
    if (d->bound == bound && d->value < bound) {
      const std::uint64_t value = d->value;
      ConsumePrefix();
      return value;
    }
    Diverge();
  }
  return rng_.NextBelow(bound);
}

FaultDecision MutationStrategy::NextFault(const FaultContext& ctx) {
  // The fault-toggle "add" fires as soon as its planned step is due AND the
  // runtime offers a candidate of the planned kind — candidate spans are
  // only populated while budget remains, so picking from them can neither
  // exceed a budget nor name an ineligible machine.
  if (pending_fault_ && ctx.step >= pending_step_) {
    if (pending_is_partition_ && !ctx.partitionable.empty()) {
      pending_fault_ = false;
      return {FaultDecision::Kind::kPartition,
              ctx.partitionable[rng_.NextBelow(ctx.partitionable.size())]};
    }
    if (!pending_is_partition_ && !ctx.crashable.empty()) {
      pending_fault_ = false;
      return {FaultDecision::Kind::kCrash,
              ctx.crashable[rng_.NextBelow(ctx.crashable.size())]};
    }
    // No candidate yet (budget-gated or everyone already down): keep the
    // plan armed for the next boundary.
  }
  if (prefix_active_ && cursor_ < prefix_.size()) {
    // Same peek-and-match as ReplayStrategy, with one extra check: the
    // recorded machine must be in the matching candidate span. The mutated
    // execution runs under real budgets (not replay_faults), and the runtime
    // treats a fault naming an ineligible machine as a strategy bug — so a
    // recorded fault this run cannot apply is consumed and dropped instead.
    const Decision& d = prefix_[cursor_];
    const auto eligible = [](std::span<const MachineId> candidates,
                             std::uint64_t machine) {
      return std::binary_search(candidates.begin(), candidates.end(),
                                MachineId{machine});
    };
    if (d.kind == Decision::Kind::kCrash && d.bound == ctx.step) {
      ConsumePrefix();
      if (eligible(ctx.crashable, d.value)) {
        return {FaultDecision::Kind::kCrash, MachineId{d.value}};
      }
    } else if (d.kind == Decision::Kind::kRestart && d.bound == ctx.step) {
      ConsumePrefix();
      if (eligible(ctx.restartable, d.value)) {
        return {FaultDecision::Kind::kRestart, MachineId{d.value}};
      }
    } else if (d.kind == Decision::Kind::kPartition && d.bound == ctx.step) {
      ConsumePrefix();
      if (eligible(ctx.partitionable, d.value)) {
        return {FaultDecision::Kind::kPartition, MachineId{d.value}};
      }
    } else if (d.kind == Decision::Kind::kHeal && d.bound == ctx.step) {
      ConsumePrefix();
      if (eligible(ctx.healable, d.value)) {
        return {FaultDecision::Kind::kHeal, MachineId{d.value}};
      }
    }
  }
  // While the prefix governs, its recorded schedule IS the failure schedule:
  // no extra geometric faults. After divergence the default takes over.
  if (prefix_active_) return {};
  return SchedulingStrategy::NextFault(ctx);
}

DeliveryFault MutationStrategy::NextDeliveryFault(
    const DeliveryFaultContext& ctx) {
  if (prefix_active_ && cursor_ < prefix_.size()) {
    const Decision& d = prefix_[cursor_];
    if (d.kind == Decision::Kind::kDrop && d.value == ctx.ordinal) {
      ConsumePrefix();
      if (ctx.drop_allowed) return DeliveryFault::kDrop;
    } else if (d.kind == Decision::Kind::kDuplicate &&
               d.value == ctx.ordinal) {
      ConsumePrefix();
      if (ctx.duplicate_allowed) return DeliveryFault::kDuplicate;
    }
  }
  if (prefix_active_) return DeliveryFault::kNone;
  return SchedulingStrategy::NextDeliveryFault(ctx);
}

SYSTEST_REGISTER_STRATEGY(
    mutate, "mutate",
    "corpus-guided: replay an interesting trace prefix, then splice / toggle "
    "a fault / insert a delay (pure random until the corpus has entries)",
    [](std::uint64_t seed, int /*budget*/) {
      return std::make_unique<MutationStrategy>(seed, ActiveCorpus());
    });

}  // namespace systest::corpus
