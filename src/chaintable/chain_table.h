// SysTest — Live Table Migration case study (§4).
//
// IChainTable: the table interface of the paper. The backend tables, the
// reference table and the MigratingTable all speak it. Point writes are
// conditional on ETags; queries come in two flavors with very different
// consistency contracts:
//
//  * ExecuteQueryAtomic — returns a snapshot of all matching rows as of one
//    linearization point.
//  * streaming queries (Start/ReadNext) — return matching rows in ascending
//    key order, where "each row read from a stream may reflect the state of
//    the table at any time between when the stream was started and the row
//    was read" (§6.2). The weaker contract is what makes the merging logic
//    in MigratingTable subtle — and buggy.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "chaintable/types.h"

namespace chaintable {

/// Handle to an open streaming query.
using StreamId = std::uint64_t;
constexpr StreamId kInvalidStream = 0;

class IChainTable {
 public:
  virtual ~IChainTable() = default;

  /// Executes one point write. Returns the outcome, with the new etag on
  /// success.
  virtual OpResult ExecuteWrite(const WriteOp& op) = 0;

  /// Point lookup by primary key.
  virtual OpResult Retrieve(const TableKey& key) const = 0;

  /// Atomic filtered snapshot, sorted by key.
  virtual std::vector<QueryRow> ExecuteQueryAtomic(const Filter& filter) const = 0;

  /// Returns the first matching row with key strictly greater than `after`
  /// (or the first matching row overall if `after` is empty), evaluated
  /// against the *current* state. This primitive is both the implementation
  /// vehicle for streaming queries and the "back up the stream" operation
  /// MigratingTable needs.
  virtual std::optional<QueryRow> QueryAbove(
      const Filter& filter, const std::optional<TableKey>& after) const = 0;

  /// Monotone counter bumped on every successful write anywhere in the
  /// table. Lets callers detect interference between two reads (the basis of
  /// MigratingTable's atomic cross-table query).
  virtual std::uint64_t MutationCount() const = 0;
};

}  // namespace chaintable
