// SysTest — Live Table Migration case study (§4 of the paper).
//
// Core types of the IChainTable specification: keys, rows, ETags, operations
// and results. IChainTable is the Azure-table-like interface that the paper's
// MigratingTable both consumes (from the two backend tables) and provides
// (to the application), "similar to that of an Azure table".
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace chaintable {

/// Primary key of a row: (partition key, row key). Rows sort by partition
/// first, then row key — the order streaming queries must respect.
struct TableKey {
  std::string partition;
  std::string row;

  friend auto operator<=>(const TableKey&, const TableKey&) = default;

  [[nodiscard]] std::string ToString() const { return partition + "/" + row; }
};

/// Property bag of a row. Properties whose names begin with "__" are
/// reserved for infrastructure (e.g. MigratingTable's tombstone marker).
using Properties = std::map<std::string, std::string>;

/// A row as stored/returned by a table.
struct TableRow {
  TableKey key;
  Properties properties;

  friend bool operator==(const TableRow&, const TableRow&) = default;
};

/// ETag: a value unique per successful write within one table's lifetime.
/// kAnyEtag in a conditional operation matches any existing row.
using Etag = std::uint64_t;
constexpr Etag kInvalidEtag = 0;
constexpr Etag kAnyEtag = ~static_cast<Etag>(0);

/// Result code of a table operation (mirrors the Azure table error space the
/// IChainTable spec cares about).
enum class TableCode {
  kOk,
  kNotFound,         ///< conditional op on a missing row
  kConditionNotMet,  ///< ETag mismatch
  kAlreadyExists,    ///< insert of an existing row
  kInvalid,          ///< malformed operation
};

std::string_view ToString(TableCode code) noexcept;

/// Outcome of a point operation.
struct OpResult {
  TableCode code = TableCode::kInvalid;
  Etag etag = kInvalidEtag;            ///< new etag on successful writes
  std::optional<TableRow> row;         ///< for retrieves
  Etag row_etag = kInvalidEtag;        ///< etag of the retrieved row

  [[nodiscard]] bool Ok() const noexcept { return code == TableCode::kOk; }
};

/// Filter for queries: optional partition restriction, optional row-key
/// range [row_from, row_to), optional property equality. An empty filter
/// matches everything. This small filter language is rich enough to exercise
/// the paper's filter-shadowing bugs.
struct Filter {
  std::optional<std::string> partition;
  std::optional<std::string> row_from;  ///< inclusive lower bound
  std::optional<std::string> row_to;    ///< exclusive upper bound
  std::optional<std::pair<std::string, std::string>> property_equals;

  [[nodiscard]] bool Matches(const TableRow& row) const;
  [[nodiscard]] std::string ToString() const;
};

/// Kind of a point write.
enum class WriteKind {
  kInsert,           ///< fails with kAlreadyExists if the row exists
  kReplace,          ///< conditional on etag; kNotFound if missing
  kMerge,            ///< conditional; merges properties into the row
  kInsertOrReplace,  ///< unconditional upsert
  kDelete,           ///< conditional on etag; kNotFound if missing
};

std::string_view ToString(WriteKind kind) noexcept;

/// A point write operation.
struct WriteOp {
  WriteKind kind = WriteKind::kInsert;
  TableRow row;            ///< key (+ properties for non-deletes)
  Etag etag = kAnyEtag;    ///< condition for kReplace/kMerge/kDelete
};

/// A row returned by a query, with its etag.
struct QueryRow {
  TableRow row;
  Etag etag = kInvalidEtag;

  friend bool operator==(const QueryRow&, const QueryRow&) = default;
};

}  // namespace chaintable
