#include "chaintable/memory_table.h"

namespace chaintable {

std::string_view ToString(TableCode code) noexcept {
  switch (code) {
    case TableCode::kOk:
      return "Ok";
    case TableCode::kNotFound:
      return "NotFound";
    case TableCode::kConditionNotMet:
      return "ConditionNotMet";
    case TableCode::kAlreadyExists:
      return "AlreadyExists";
    case TableCode::kInvalid:
      return "Invalid";
  }
  return "?";
}

std::string_view ToString(WriteKind kind) noexcept {
  switch (kind) {
    case WriteKind::kInsert:
      return "Insert";
    case WriteKind::kReplace:
      return "Replace";
    case WriteKind::kMerge:
      return "Merge";
    case WriteKind::kInsertOrReplace:
      return "InsertOrReplace";
    case WriteKind::kDelete:
      return "Delete";
  }
  return "?";
}

bool Filter::Matches(const TableRow& row) const {
  if (partition && row.key.partition != *partition) return false;
  if (row_from && row.key.row < *row_from) return false;
  if (row_to && row.key.row >= *row_to) return false;
  if (property_equals) {
    auto it = row.properties.find(property_equals->first);
    if (it == row.properties.end() || it->second != property_equals->second) {
      return false;
    }
  }
  return true;
}

std::string Filter::ToString() const {
  std::string out = "filter(";
  if (partition) out += "p=" + *partition + " ";
  if (row_from) out += "from=" + *row_from + " ";
  if (row_to) out += "to=" + *row_to + " ";
  if (property_equals) {
    out += property_equals->first + "==" + property_equals->second;
  }
  out += ")";
  return out;
}

OpResult InMemoryChainTable::ExecuteWrite(const WriteOp& op) {
  OpResult result;
  auto it = rows_.find(op.row.key);
  switch (op.kind) {
    case WriteKind::kInsert: {
      if (it != rows_.end()) {
        result.code = TableCode::kAlreadyExists;
        return result;
      }
      const Etag etag = NextEtag();
      rows_.emplace(op.row.key, Stored{op.row.properties, etag});
      Bump();
      result.code = TableCode::kOk;
      result.etag = etag;
      return result;
    }
    case WriteKind::kReplace: {
      if (it == rows_.end()) {
        result.code = TableCode::kNotFound;
        return result;
      }
      if (!Matches(op.etag, it->second)) {
        result.code = TableCode::kConditionNotMet;
        return result;
      }
      it->second.properties = op.row.properties;
      it->second.etag = NextEtag();
      Bump();
      result.code = TableCode::kOk;
      result.etag = it->second.etag;
      return result;
    }
    case WriteKind::kMerge: {
      if (it == rows_.end()) {
        result.code = TableCode::kNotFound;
        return result;
      }
      if (!Matches(op.etag, it->second)) {
        result.code = TableCode::kConditionNotMet;
        return result;
      }
      for (const auto& [name, value] : op.row.properties) {
        it->second.properties[name] = value;
      }
      it->second.etag = NextEtag();
      Bump();
      result.code = TableCode::kOk;
      result.etag = it->second.etag;
      return result;
    }
    case WriteKind::kInsertOrReplace: {
      if (it == rows_.end()) {
        it = rows_.emplace(op.row.key, Stored{op.row.properties, 0}).first;
      } else {
        it->second.properties = op.row.properties;
      }
      it->second.etag = NextEtag();
      Bump();
      result.code = TableCode::kOk;
      result.etag = it->second.etag;
      return result;
    }
    case WriteKind::kDelete: {
      if (it == rows_.end()) {
        result.code = TableCode::kNotFound;
        return result;
      }
      if (!Matches(op.etag, it->second)) {
        result.code = TableCode::kConditionNotMet;
        return result;
      }
      rows_.erase(it);
      Bump();
      result.code = TableCode::kOk;
      return result;
    }
  }
  return result;
}

OpResult InMemoryChainTable::Retrieve(const TableKey& key) const {
  OpResult result;
  auto it = rows_.find(key);
  if (it == rows_.end()) {
    result.code = TableCode::kNotFound;
    return result;
  }
  result.code = TableCode::kOk;
  result.row = TableRow{key, it->second.properties};
  result.row_etag = it->second.etag;
  return result;
}

std::vector<QueryRow> InMemoryChainTable::ExecuteQueryAtomic(
    const Filter& filter) const {
  std::vector<QueryRow> out;
  for (const auto& [key, stored] : rows_) {
    const TableRow row{key, stored.properties};
    if (filter.Matches(row)) {
      out.push_back(QueryRow{row, stored.etag});
    }
  }
  return out;
}

std::optional<QueryRow> InMemoryChainTable::QueryAbove(
    const Filter& filter, const std::optional<TableKey>& after) const {
  auto it = after.has_value() ? rows_.upper_bound(*after) : rows_.begin();
  for (; it != rows_.end(); ++it) {
    const TableRow row{it->first, it->second.properties};
    if (filter.Matches(row)) {
      return QueryRow{row, it->second.etag};
    }
  }
  return std::nullopt;
}

}  // namespace chaintable
