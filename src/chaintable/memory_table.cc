#include "chaintable/memory_table.h"

namespace chaintable {

namespace {

/// FNV-1a 64 over a byte range / a word, chained through `hash`.
std::uint64_t FnvBytes(std::uint64_t hash, const char* data,
                       std::size_t size) noexcept {
  constexpr std::uint64_t kPrime = 1099511628211ull;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= kPrime;
  }
  return hash;
}

std::uint64_t FnvString(std::uint64_t hash, const std::string& s) noexcept {
  // Length first, so ("ab","c") and ("a","bc") hash differently.
  const std::uint64_t n = s.size();
  hash = FnvBytes(hash, reinterpret_cast<const char*>(&n), sizeof(n));
  return FnvBytes(hash, s.data(), s.size());
}

std::uint64_t FnvWord(std::uint64_t hash, std::uint64_t value) noexcept {
  return FnvBytes(hash, reinterpret_cast<const char*>(&value), sizeof(value));
}

}  // namespace

std::uint64_t InMemoryChainTable::RowHash(const TableKey& key,
                                          const Stored& stored) noexcept {
  std::uint64_t hash = 1469598103934665603ull;  // FNV offset basis
  hash = FnvString(hash, key.partition);
  hash = FnvString(hash, key.row);
  for (const auto& [name, value] : stored.properties) {
    hash = FnvString(hash, name);
    hash = FnvString(hash, value);
  }
  return FnvWord(hash, stored.etag);
}

std::string_view ToString(TableCode code) noexcept {
  switch (code) {
    case TableCode::kOk:
      return "Ok";
    case TableCode::kNotFound:
      return "NotFound";
    case TableCode::kConditionNotMet:
      return "ConditionNotMet";
    case TableCode::kAlreadyExists:
      return "AlreadyExists";
    case TableCode::kInvalid:
      return "Invalid";
  }
  return "?";
}

std::string_view ToString(WriteKind kind) noexcept {
  switch (kind) {
    case WriteKind::kInsert:
      return "Insert";
    case WriteKind::kReplace:
      return "Replace";
    case WriteKind::kMerge:
      return "Merge";
    case WriteKind::kInsertOrReplace:
      return "InsertOrReplace";
    case WriteKind::kDelete:
      return "Delete";
  }
  return "?";
}

bool Filter::Matches(const TableRow& row) const {
  if (partition && row.key.partition != *partition) return false;
  if (row_from && row.key.row < *row_from) return false;
  if (row_to && row.key.row >= *row_to) return false;
  if (property_equals) {
    auto it = row.properties.find(property_equals->first);
    if (it == row.properties.end() || it->second != property_equals->second) {
      return false;
    }
  }
  return true;
}

std::string Filter::ToString() const {
  std::string out = "filter(";
  if (partition) out += "p=" + *partition + " ";
  if (row_from) out += "from=" + *row_from + " ";
  if (row_to) out += "to=" + *row_to + " ";
  if (property_equals) {
    out += property_equals->first + "==" + property_equals->second;
  }
  out += ")";
  return out;
}

OpResult InMemoryChainTable::ExecuteWrite(const WriteOp& op) {
  OpResult result;
  auto it = rows_.find(op.row.key);
  switch (op.kind) {
    case WriteKind::kInsert: {
      if (it != rows_.end()) {
        result.code = TableCode::kAlreadyExists;
        return result;
      }
      const Etag etag = NextEtag();
      const auto pos =
          rows_.emplace(op.row.key, Stored{op.row.properties, etag}).first;
      content_hash_ ^= RowHash(pos->first, pos->second);
      Bump();
      result.code = TableCode::kOk;
      result.etag = etag;
      return result;
    }
    case WriteKind::kReplace: {
      if (it == rows_.end()) {
        result.code = TableCode::kNotFound;
        return result;
      }
      if (!Matches(op.etag, it->second)) {
        result.code = TableCode::kConditionNotMet;
        return result;
      }
      content_hash_ ^= RowHash(it->first, it->second);
      it->second.properties = op.row.properties;
      it->second.etag = NextEtag();
      content_hash_ ^= RowHash(it->first, it->second);
      Bump();
      result.code = TableCode::kOk;
      result.etag = it->second.etag;
      return result;
    }
    case WriteKind::kMerge: {
      if (it == rows_.end()) {
        result.code = TableCode::kNotFound;
        return result;
      }
      if (!Matches(op.etag, it->second)) {
        result.code = TableCode::kConditionNotMet;
        return result;
      }
      content_hash_ ^= RowHash(it->first, it->second);
      for (const auto& [name, value] : op.row.properties) {
        it->second.properties[name] = value;
      }
      it->second.etag = NextEtag();
      content_hash_ ^= RowHash(it->first, it->second);
      Bump();
      result.code = TableCode::kOk;
      result.etag = it->second.etag;
      return result;
    }
    case WriteKind::kInsertOrReplace: {
      if (it == rows_.end()) {
        it = rows_.emplace(op.row.key, Stored{op.row.properties, 0}).first;
      } else {
        content_hash_ ^= RowHash(it->first, it->second);
        it->second.properties = op.row.properties;
      }
      it->second.etag = NextEtag();
      content_hash_ ^= RowHash(it->first, it->second);
      Bump();
      result.code = TableCode::kOk;
      result.etag = it->second.etag;
      return result;
    }
    case WriteKind::kDelete: {
      if (it == rows_.end()) {
        result.code = TableCode::kNotFound;
        return result;
      }
      if (!Matches(op.etag, it->second)) {
        result.code = TableCode::kConditionNotMet;
        return result;
      }
      content_hash_ ^= RowHash(it->first, it->second);
      rows_.erase(it);
      Bump();
      result.code = TableCode::kOk;
      return result;
    }
  }
  return result;
}

OpResult InMemoryChainTable::Retrieve(const TableKey& key) const {
  OpResult result;
  auto it = rows_.find(key);
  if (it == rows_.end()) {
    result.code = TableCode::kNotFound;
    return result;
  }
  result.code = TableCode::kOk;
  result.row = TableRow{key, it->second.properties};
  result.row_etag = it->second.etag;
  return result;
}

std::vector<QueryRow> InMemoryChainTable::ExecuteQueryAtomic(
    const Filter& filter) const {
  std::vector<QueryRow> out;
  for (const auto& [key, stored] : rows_) {
    const TableRow row{key, stored.properties};
    if (filter.Matches(row)) {
      out.push_back(QueryRow{row, stored.etag});
    }
  }
  return out;
}

std::optional<QueryRow> InMemoryChainTable::QueryAbove(
    const Filter& filter, const std::optional<TableKey>& after) const {
  auto it = after.has_value() ? rows_.upper_bound(*after) : rows_.begin();
  for (; it != rows_.end(); ++it) {
    const TableRow row{it->first, it->second.properties};
    if (filter.Matches(row)) {
      return QueryRow{row, it->second.etag};
    }
  }
  return std::nullopt;
}

}  // namespace chaintable
