// Scenario registrations for the chaintable domain: a read-modify-write
// micro harness driving concurrent writer machines against one
// InMemoryChainTable. Each increment spans two scheduling points (read the
// counter row in one step, write it back in a later one), so the scheduler
// can interleave writers inside the window:
//
//  * chaintable-lost-update — writers write back with a match-any etag
//    (blind write); interleaved increments overwrite each other and the
//    auditor's final count is short. A genuine exploration-found safety bug.
//  * chaintable-cas — writers write back conditionally on the etag they
//    read; interference surfaces as kConditionNotMet instead of data loss,
//    so the audit always balances (the fixed control).
#include <memory>
#include <string>

#include "api/scenario_registry.h"
#include "chaintable/memory_table.h"
#include "core/systest.h"

namespace chaintable {
namespace {

using systest::api::ParamMap;
using systest::api::ParamSpec;
using systest::api::Scenario;

const TableKey kCounterKey{"P", "counter"};

std::uint64_t CounterValue(const InMemoryChainTable& table) {
  const OpResult r = table.Retrieve(kCounterKey);
  return r.code == TableCode::kOk ? std::stoull(r.row->properties.at("v")) : 0;
}

struct OpTick final : systest::Event {};

struct WriterDone final : systest::Event {
  explicit WriterDone(std::uint64_t successes) : successes(successes) {}
  std::uint64_t successes;
};

/// Increments the shared counter row `ops` times. The read and the
/// write-back are separate event handlers, so other writers can run in
/// between — the classic lost-update window.
class CounterWriter final : public systest::Machine {
 public:
  static constexpr bool kReusableRuntime = true;

  CounterWriter(std::shared_ptr<InMemoryChainTable> table,
                systest::MachineId auditor, std::uint64_t ops, bool blind)
      : table_(std::move(table)), auditor_(auditor), ops_(ops), blind_(blind) {
    State("Run").OnEntry(&CounterWriter::Kick).On<OpTick>(&CounterWriter::OnTick);
    SetStart("Run");
  }

  /// Stateful exploration payload: the writer's read-modify-write progress.
  /// The shared table itself is hashed by a runtime-level fingerprint probe
  /// (see the harness) — it is mutated from every writer's handlers, so no
  /// single machine may own it per the FingerprintPayload contract.
  void FingerprintPayload(systest::StateHasher& hasher) const override {
    hasher.Mix(reading_ ? 1 : 0).Mix(done_).Mix(successes_);
    hasher.Mix(seen_value_).Mix(seen_etag_);
  }

 private:
  void OnReset() override {
    reading_ = true;
    done_ = 0;
    successes_ = 0;
    seen_value_ = 0;
    seen_etag_ = kInvalidEtag;
  }

  void Kick() { Send<OpTick>(Id()); }

  void OnTick(const OpTick&) {
    if (reading_) {
      const OpResult r = table_->Retrieve(kCounterKey);
      Assert(r.code == TableCode::kOk, "counter row vanished");
      seen_value_ = std::stoull(r.row->properties.at("v"));
      seen_etag_ = r.row_etag;
      reading_ = false;
      Send<OpTick>(Id());
      return;
    }
    WriteOp op;
    op.kind = WriteKind::kReplace;
    op.row.key = kCounterKey;
    op.row.properties = {{"v", std::to_string(seen_value_ + 1)}};
    op.etag = blind_ ? kAnyEtag : seen_etag_;
    if (table_->ExecuteWrite(op).code == TableCode::kOk) ++successes_;
    reading_ = true;
    if (++done_ == ops_) {
      Send<WriterDone>(auditor_, successes_);
      Halt();
      return;
    }
    Send<OpTick>(Id());
  }

  std::shared_ptr<InMemoryChainTable> table_;
  systest::MachineId auditor_;
  std::uint64_t ops_;
  bool blind_;
  bool reading_ = true;
  std::uint64_t done_ = 0;
  std::uint64_t successes_ = 0;
  std::uint64_t seen_value_ = 0;
  Etag seen_etag_ = kInvalidEtag;
};

/// Waits for every writer, then audits: the counter must equal the number of
/// increments the writers believe succeeded.
class CounterAuditor final : public systest::Machine {
 public:
  /// Execution recycling: the auditor owns the RESET of the shared table
  /// (exactly one harness-time machine may, and it is created first).
  static constexpr bool kReusableRuntime = true;

  CounterAuditor(std::shared_ptr<InMemoryChainTable> table,
                 std::size_t writers)
      : table_(std::move(table)), writers_(writers), pending_(writers) {
    State("Collect").On<WriterDone>(&CounterAuditor::OnDone);
    SetStart("Collect");
  }

  void FingerprintPayload(systest::StateHasher& hasher) const override {
    hasher.Mix(pending_).Mix(total_);
  }

 private:
  void OnReset() override {
    pending_ = writers_;
    total_ = 0;
    table_->Reset();
    WriteOp seed;
    seed.kind = WriteKind::kInsert;
    seed.row.key = kCounterKey;
    seed.row.properties = {{"v", "0"}};
    table_->ExecuteWrite(seed);  // identical to the harness's seeding
  }

  void OnDone(const WriterDone& done) {
    total_ += done.successes;
    if (--pending_ > 0) return;
    const std::uint64_t counter = CounterValue(*table_);
    Assert(counter == total_, [&] {
      return "lost update: counter is " + std::to_string(counter) + " but " +
             std::to_string(total_) + " increments succeeded";
    });
    Halt();
  }

  std::shared_ptr<InMemoryChainTable> table_;
  std::size_t writers_;  // retained for OnReset
  std::size_t pending_;
  std::uint64_t total_ = 0;
};

std::vector<ParamSpec> Params() {
  return {
      {"writers", "concurrent writer machines (default 2)"},
      {"ops", "increments per writer (default 2)"},
  };
}

Scenario Counter(const char* name, const char* description, bool blind) {
  Scenario s;
  s.name = name;
  s.description = description;
  s.tags = {"chaintable", "safety", blind ? "buggy" : "fixed"};
  s.params = Params();
  s.make = [blind](const ParamMap& params) -> systest::Harness {
    const std::size_t writers = params.GetUint("writers", 2);
    const std::uint64_t ops = params.GetUint("ops", 2);
    return [writers, ops, blind](systest::Runtime& rt) {
      auto table = std::make_shared<InMemoryChainTable>();
      WriteOp seed;
      seed.kind = WriteKind::kInsert;
      seed.row.key = kCounterKey;
      seed.row.properties = {{"v", "0"}};
      table->ExecuteWrite(seed);
      // Table CONTENTS belong to no single machine (every writer mutates the
      // shared table inside its own handlers), so they enter the execution
      // fingerprint through a world-level probe instead of a
      // FingerprintPayload override.
      rt.AddFingerprintProbe([table](systest::StateHasher& hasher) {
        const OpResult r = table->Retrieve(kCounterKey);
        hasher.Mix(table->RowCount()).Mix(table->MutationCount());
        if (r.code == TableCode::kOk) {
          hasher.Mix(std::stoull(r.row->properties.at("v")));
          hasher.Mix(r.row_etag);
        }
      });
      const systest::MachineId auditor =
          rt.CreateMachine<CounterAuditor>("Auditor", table, writers);
      for (std::size_t i = 0; i < writers; ++i) {
        rt.CreateMachine<CounterWriter>("Writer" + std::to_string(i), table,
                                        auditor, ops, blind);
      }
    };
  };
  s.default_config = [] {
    systest::TestConfig config;
    config.iterations = 20'000;
    config.max_steps = 500;
    config.seed = 2016;
    return config;
  };
  return s;
}

SYSTEST_REGISTER_SCENARIO(chaintable_lost_update) {
  return Counter("chaintable-lost-update",
                 "IChainTable read-modify-write with blind (match-any etag) "
                 "write-backs: interleaved increments are lost",
                 /*blind=*/true);
}

SYSTEST_REGISTER_SCENARIO(chaintable_cas) {
  return Counter("chaintable-cas",
                 "IChainTable read-modify-write with etag-conditional "
                 "write-backs (control)",
                 /*blind=*/false);
}

}  // namespace
}  // namespace chaintable
