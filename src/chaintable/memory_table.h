// SysTest — Live Table Migration case study (§4).
//
// InMemoryChainTable: the reference implementation of the IChainTable
// specification. The paper's harness used its reference implementation both
// as the reference table and as the two backend tables ("this reference
// implementation was reused for the BTs, since the goal was not to test the
// real Azure tables") — we make the same substitution.
#pragma once

#include <map>

#include "chaintable/chain_table.h"

namespace chaintable {

class InMemoryChainTable final : public IChainTable {
 public:
  /// ETags are `first_etag + k * etag_stride`. Multi-table deployments (the
  /// MigratingTable harness) give each table a distinct residue class so
  /// etag values never collide across tables — MigratingTable's virtual-etag
  /// scheme relies on that uniqueness, just as real Azure etags (GUID-like)
  /// never collide between tables.
  explicit InMemoryChainTable(Etag first_etag = 1, Etag etag_stride = 1)
      : etag_counter_(first_etag), etag_stride_(etag_stride) {}

  OpResult ExecuteWrite(const WriteOp& op) override;
  OpResult Retrieve(const TableKey& key) const override;
  std::vector<QueryRow> ExecuteQueryAtomic(const Filter& filter) const override;
  std::optional<QueryRow> QueryAbove(
      const Filter& filter, const std::optional<TableKey>& after) const override;
  std::uint64_t MutationCount() const override { return mutations_; }

  [[nodiscard]] std::size_t RowCount() const noexcept { return rows_.size(); }
  [[nodiscard]] bool Empty() const noexcept { return rows_.empty(); }

  /// Execution recycling: restores the table to its just-constructed state
  /// (empty, etag counter rewound to the residue class it was built with).
  /// Owners that seed rows at construction must re-seed after calling this.
  void Reset(Etag first_etag = 1, Etag etag_stride = 1) noexcept {
    rows_.clear();
    etag_counter_ = first_etag;
    etag_stride_ = etag_stride;
    mutations_ = 0;
    content_hash_ = 0;
  }

  /// Order-independent 64-bit digest of the full table contents (every key,
  /// its properties, its etag): the XOR of one FNV-1a hash per stored row.
  /// Maintained DIFFERENTIALLY — each ExecuteWrite XORs the mutated row's
  /// old hash out and its new hash in, so the digest is O(row) per write
  /// and O(1) to read no matter how large the table grows. Feeds
  /// fingerprint payloads (stateful exploration) without rehashing the
  /// world on every scheduling step.
  [[nodiscard]] std::uint64_t ContentHash() const noexcept {
    return content_hash_;
  }

 private:
  struct Stored {
    Properties properties;
    Etag etag;
  };

  Etag NextEtag() noexcept {
    const Etag etag = etag_counter_;
    etag_counter_ += etag_stride_;
    return etag;
  }
  void Bump() noexcept { ++mutations_; }

  /// True iff the condition etag matches the stored row.
  static bool Matches(Etag condition, const Stored& stored) noexcept {
    return condition == kAnyEtag || condition == stored.etag;
  }

  /// One row's contribution to ContentHash(). XOR-combining per-row hashes
  /// makes removal exact: XORing a row's hash a second time restores the
  /// digest to its value before the row existed.
  static std::uint64_t RowHash(const TableKey& key,
                               const Stored& stored) noexcept;

  std::map<TableKey, Stored> rows_;
  Etag etag_counter_;
  Etag etag_stride_;
  std::uint64_t mutations_ = 0;
  std::uint64_t content_hash_ = 0;
};

}  // namespace chaintable
