// Engine microbenchmarks (google-benchmark): raw serialized-execution
// throughput of the runtime — send/dequeue cost via ping-pong machines,
// whole-execution setup/teardown cost, and the per-iteration cost of the
// flagship harnesses. These quantify the "cost of systematic testing" (§6.2)
// on this implementation.
#include <benchmark/benchmark.h>

#include "core/systest.h"
#include "fabric/harness.h"
#include "mtable/harness.h"
#include "samplerepl/harness.h"
#include "vnext/harness.h"

namespace {

using systest::Event;
using systest::Machine;
using systest::MachineId;

struct Ball final : Event {
  explicit Ball(int n) : n(n) {}
  int n;
};

class PingPong final : public Machine {
 public:
  PingPong(MachineId peer, int rounds, bool serve)
      : peer_(peer), rounds_(rounds), serve_(serve) {
    State("Play").OnEntry(&PingPong::OnStart).On<Ball>(&PingPong::OnBall);
    SetStart("Play");
  }
  MachineId peer_;

 private:
  void OnStart() {
    if (serve_) {
      Send<Ball>(peer_, 0);
    }
  }
  void OnBall(const Ball& ball) {
    if (ball.n < rounds_) {
      Send<Ball>(peer_, ball.n + 1);
    }
  }
  int rounds_;
  bool serve_;
};

void BM_PingPongSteps(benchmark::State& state) {
  const int rounds = static_cast<int>(state.range(0));
  std::uint64_t steps = 0;
  for (auto _ : state) {
    systest::RandomStrategy strategy(42);
    strategy.PrepareIteration(0, 1'000'000);
    systest::RuntimeOptions options;
    options.max_steps = 1'000'000;
    systest::Runtime rt(strategy, options);
    auto a = rt.CreateMachine<PingPong>("A", MachineId{}, rounds, false);
    auto b = rt.CreateMachine<PingPong>("B", a, rounds, true);
    static_cast<PingPong*>(rt.FindMachine(a))->peer_ = b;
    while (rt.Step()) {
    }
    steps += rt.Steps();
  }
  state.counters["steps/s"] =
      benchmark::Counter(static_cast<double>(steps), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PingPongSteps)->Arg(100)->Arg(1000);

void RunHarnessBenchmark(benchmark::State& state, systest::TestConfig config,
                         const systest::Harness& harness) {
  config.stop_on_first_bug = true;
  std::uint64_t executions = 0;
  for (auto _ : state) {
    config.iterations = 50;
    config.seed = 42 + executions;  // vary schedules across runs
    systest::TestingEngine engine(config, harness);
    const systest::TestReport report = engine.Run();
    executions += report.executions;
  }
  state.counters["executions/s"] = benchmark::Counter(
      static_cast<double>(executions), benchmark::Counter::kIsRate);
}

void BM_SampleReplExecution(benchmark::State& state) {
  systest::TestConfig config;
  config.max_steps = 2'000;
  RunHarnessBenchmark(state, config,
                      samplerepl::MakeHarness(samplerepl::HarnessOptions{}));
}
BENCHMARK(BM_SampleReplExecution);

void BM_VNextExecution(benchmark::State& state) {
  vnext::DriverOptions options;
  options.manager.fix_stale_sync_report = true;
  RunHarnessBenchmark(state,
                      vnext::DefaultConfig("random"),
                      vnext::MakeExtentRepairHarness(options));
}
BENCHMARK(BM_VNextExecution);

void BM_MTableExecution(benchmark::State& state) {
  RunHarnessBenchmark(
      state, mtable::DefaultConfig("random"),
      mtable::MakeMigrationHarness(mtable::MigrationHarnessOptions{}));
}
BENCHMARK(BM_MTableExecution);

void BM_FabricExecution(benchmark::State& state) {
  RunHarnessBenchmark(state,
                      fabric::DefaultConfig("random"),
                      fabric::MakeFailoverHarness(fabric::FailoverOptions{}));
}
BENCHMARK(BM_FabricExecution);

}  // namespace

BENCHMARK_MAIN();
