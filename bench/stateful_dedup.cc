// Stateful-exploration dedup bench: distinct-state discovery rate vs wall
// clock, across all five case-study domains. For each domain's control
// scenario the same budget is run three times — stateless (the baseline
// every PR 2 number was captured against), stateful (fingerprint dedup +
// pruning over the default structural view) and stateful+payloads
// (FingerprintPayload overrides and shared-state probes mixed in) — and the
// stateful rows report how many distinct program states the budget actually
// covered, how many executions were pruned for reconverging to known
// states, and the fingerprint hit rate. Comparing /on to /payload shows how
// payload-aware dedup shifts distinct-state discovery: domains whose
// machines carry semantic state beyond their control state (samplerepl
// replica counters, chaintable table contents) split structurally identical
// states apart, lowering the hit rate and raising distinct-state counts.
//
// Usage: stateful_dedup [--json] [iterations-per-scenario]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "api/scenario_registry.h"
#include "bench/bench_util.h"
#include "core/systest.h"

namespace {

using systest::TestConfig;
using systest::TestingEngine;
using systest::TestReport;
using systest::api::ParamMap;
using systest::api::Scenario;
using systest::api::ScenarioRegistry;

struct DomainRow {
  const char* domain;
  const char* scenario;  ///< control variant: the full budget always runs
};

// One control scenario per domain; buggy variants would stop at the first
// violation and make the two modes explore different budget shapes.
constexpr DomainRow kDomains[] = {
    {"samplerepl", "samplerepl-fixed"},
    {"chaintable", "chaintable-cas"},
    {"vnext", "vnext-fixed"},
    {"mtable", "mtable-migration"},
    {"fabric", "fabric-failover-fixed"},
};

void RunDomain(const DomainRow& row, std::uint64_t iterations) {
  const Scenario& scenario = ScenarioRegistry::Instance().Get(row.scenario);
  const systest::Harness harness = scenario.make(ParamMap{});
  TestConfig config =
      scenario.default_config ? scenario.default_config() : TestConfig{};
  config.iterations = iterations;

  enum class Mode { kOff, kOn, kPayload };
  for (const Mode mode : {Mode::kOff, Mode::kOn, Mode::kPayload}) {
    const bool stateful = mode != Mode::kOff;
    config.stateful = stateful;
    config.fingerprint_payloads = mode == Mode::kPayload;
    TestingEngine engine(config, harness);
    const TestReport report = engine.Run();
    const double exec_per_sec =
        report.total_seconds > 0 ? report.executions / report.total_seconds
                                 : 0.0;
    const double steps_per_sec =
        report.total_seconds > 0 ? report.total_steps / report.total_seconds
                                 : 0.0;
    const double states_per_sec =
        report.total_seconds > 0
            ? report.distinct_states / report.total_seconds
            : 0.0;
    const std::string name =
        std::string("stateful_dedup/") + row.domain +
        (mode == Mode::kOff ? "/off"
                            : mode == Mode::kOn ? "/on" : "/payload");
    if (bench::JsonMode()) {
      std::string extra = bench::DescribeConfig(config);
      if (stateful) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      " distinct_states=%llu distinct_per_sec=%.1f "
                      "pruned=%llu hits=%llu misses=%llu hit_rate=%.4f",
                      static_cast<unsigned long long>(report.distinct_states),
                      states_per_sec,
                      static_cast<unsigned long long>(report.pruned_executions),
                      static_cast<unsigned long long>(report.fingerprint_hits),
                      static_cast<unsigned long long>(
                          report.fingerprint_misses),
                      report.FingerprintHitRate());
        extra += buf;
      }
      bench::EmitJson(name, exec_per_sec, steps_per_sec, extra);
    } else if (stateful) {
      std::printf(
          "  %-26s  %9.0f exec/s  %8llu distinct (%8.0f/s)  %6llu pruned  "
          "hit-rate %5.1f%%  (%.3fs)\n",
          name.c_str(), exec_per_sec,
          static_cast<unsigned long long>(report.distinct_states),
          states_per_sec,
          static_cast<unsigned long long>(report.pruned_executions),
          report.FingerprintHitRate() * 100.0, report.total_seconds);
    } else {
      std::printf("  %-26s  %9.0f exec/s  (%llu execs, %.3fs)\n", name.c_str(),
                  exec_per_sec,
                  static_cast<unsigned long long>(report.executions),
                  report.total_seconds);
    }
    if (report.bug_found) {
      // Controls are expected bug-free; a violation here is a real finding.
      std::fprintf(stderr, "unexpected bug in %s: %s\n", row.scenario,
                   report.bug_message.c_str());
      std::exit(1);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseArgs(argc, argv);
  std::uint64_t iterations = 1000;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") continue;
    iterations = std::strtoull(argv[i], nullptr, 10);
  }
  if (!bench::JsonMode()) {
    std::printf("stateful dedup bench (%llu iterations per scenario)\n",
                static_cast<unsigned long long>(iterations));
  }
  for (const DomainRow& row : kDomains) {
    RunDomain(row, iterations);
  }
  return 0;
}
