// Stateful-exploration dedup bench: distinct-state discovery rate vs wall
// clock, across all five case-study domains. For each domain's control
// scenario the same budget is run three times — stateless (the baseline
// every PR 2 number was captured against), stateful (fingerprint dedup +
// pruning over the default structural view) and stateful+payloads
// (FingerprintPayload overrides and shared-state probes mixed in) — and the
// stateful rows report how many distinct program states the budget actually
// covered, how many executions were pruned for reconverging to known
// states, and the fingerprint hit rate. Comparing /on to /payload shows how
// payload-aware dedup shifts distinct-state discovery: domains whose
// machines carry semantic state beyond their control state (samplerepl
// replica counters, chaintable table contents) split structurally identical
// states apart, lowering the hit rate and raising distinct-state counts.
//
// The recovery section pins the tiered visited set's reason to exist: for
// the two domains that overflow the historical 1M flat cap (vnext within
// the base budget; samplerepl scaled to 5 nodes / 4 requests / 5 values,
// where it saturates within 4x of it — the default 3/2/2 harness has an
// honest state space of only ~60k, which no cap size can make interesting),
// the same budget runs twice —
// "/sat1m" against the old cap (hot level = total budget, so the set is
// exactly the flat one and FREEZES at 1M: revisits of the uncounted tail
// read as misses, collapsing the honest hit rate) and "/tiered100x" against
// a 100x budget with the hot level still at 1M, so the overflow compacts
// into bloom-fronted sorted runs instead of being dropped. The hit-rate gap
// between the paired rows is the pruning the flat cap was throwing away.
// Stateful rows carry distinct_states/hit_rate as top-level JSON fields;
// tools/bench_compare.py tracks hit_rate as an advisory metric.
//
// Usage: stateful_dedup [--json] [iterations-per-scenario]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "api/scenario_registry.h"
#include "bench/bench_util.h"
#include "core/systest.h"

namespace {

using systest::TestConfig;
using systest::TestingEngine;
using systest::TestReport;
using systest::api::ParamMap;
using systest::api::Scenario;
using systest::api::ScenarioRegistry;

struct DomainRow {
  const char* domain;
  const char* scenario;  ///< control variant: the full budget always runs
};

// One control scenario per domain; buggy variants would stop at the first
// violation and make the two modes explore different budget shapes.
constexpr DomainRow kDomains[] = {
    {"samplerepl", "samplerepl-fixed"},
    {"chaintable", "chaintable-cas"},
    {"vnext", "vnext-fixed"},
    {"mtable", "mtable-migration"},
    {"fabric", "fabric-failover-fixed"},
};

/// The historical flat-set cap the recovery rows saturate (and the tiered
/// rows keep as their hot-level size).
constexpr std::uint64_t kOldCap = 1u << 20;
constexpr std::uint64_t kRecoveryFactor = 100;  // tiered budget = 100x cap

/// Runs one engine configuration and emits its row. Stateful rows add
/// distinct_states / hit_rate as top-level JSON fields.
void EmitRow(const std::string& name, const TestConfig& config,
             const systest::Harness& harness, const char* scenario,
             const std::string& config_note = std::string()) {
  TestingEngine engine(config, harness);
  const TestReport report = engine.Run();
  const double exec_per_sec =
      report.total_seconds > 0 ? report.executions / report.total_seconds
                               : 0.0;
  const double steps_per_sec =
      report.total_seconds > 0 ? report.total_steps / report.total_seconds
                               : 0.0;
  const double states_per_sec =
      report.total_seconds > 0 ? report.distinct_states / report.total_seconds
                               : 0.0;
  if (bench::JsonMode()) {
    std::string top_level;
    std::string extra = bench::DescribeConfig(config);
    if (!config_note.empty()) extra += " " + config_note;
    if (config.stateful) {
      char top[96];
      std::snprintf(top, sizeof(top),
                    "\"distinct_states\":%llu,\"hit_rate\":%.4f",
                    static_cast<unsigned long long>(report.distinct_states),
                    report.FingerprintHitRate());
      top_level = top;
      char buf[224];
      std::snprintf(
          buf, sizeof(buf),
          " distinct_per_sec=%.1f pruned=%llu hits=%llu misses=%llu"
          " budget=%llu saturated=%d compactions=%llu runs=%llu",
          states_per_sec,
          static_cast<unsigned long long>(report.pruned_executions),
          static_cast<unsigned long long>(report.fingerprint_hits),
          static_cast<unsigned long long>(report.fingerprint_misses),
          static_cast<unsigned long long>(report.visited_budget),
          report.VisitedSetSaturated() ? 1 : 0,
          static_cast<unsigned long long>(report.visited.compactions),
          static_cast<unsigned long long>(report.visited.runs));
      extra += buf;
    }
    bench::EmitJson(name, exec_per_sec, steps_per_sec, extra, top_level);
  } else if (config.stateful) {
    std::printf(
        "  %-30s  %9.0f exec/s  %8llu distinct (%8.0f/s)  %6llu pruned  "
        "hit-rate %5.1f%%%s  (%.3fs)\n",
        name.c_str(), exec_per_sec,
        static_cast<unsigned long long>(report.distinct_states),
        states_per_sec,
        static_cast<unsigned long long>(report.pruned_executions),
        report.FingerprintHitRate() * 100.0,
        report.VisitedSetSaturated() ? "  SATURATED" : "",
        report.total_seconds);
  } else {
    std::printf("  %-30s  %9.0f exec/s  (%llu execs, %.3fs)\n", name.c_str(),
                exec_per_sec,
                static_cast<unsigned long long>(report.executions),
                report.total_seconds);
  }
  if (report.bug_found) {
    // Controls are expected bug-free; a violation here is a real finding.
    std::fprintf(stderr, "unexpected bug in %s: %s\n", scenario,
                 report.bug_message.c_str());
    std::exit(1);
  }
}

void RunDomain(const DomainRow& row, std::uint64_t iterations) {
  const Scenario& scenario = ScenarioRegistry::Instance().Get(row.scenario);
  const systest::Harness harness = scenario.make(ParamMap{});
  TestConfig config =
      scenario.default_config ? scenario.default_config() : TestConfig{};
  config.iterations = iterations;

  enum class Mode { kOff, kOn, kPayload };
  for (const Mode mode : {Mode::kOff, Mode::kOn, Mode::kPayload}) {
    config.stateful = mode != Mode::kOff;
    config.fingerprint_payloads = mode == Mode::kPayload;
    const std::string name =
        std::string("stateful_dedup/") + row.domain +
        (mode == Mode::kOff ? "/off"
                            : mode == Mode::kOn ? "/on" : "/payload");
    EmitRow(name, config, harness, row.scenario);
  }
}

/// Saturated-flat vs tiered-100x pair for one state-heavy domain.
/// `iteration_factor` scales the shared budget and `param_assigns` scales
/// the harness so the domain actually overflows the 1M cap within it.
void RunRecovery(const DomainRow& row, std::uint64_t iterations,
                 std::uint64_t iteration_factor,
                 const std::vector<const char*>& param_assigns = {}) {
  const Scenario& scenario = ScenarioRegistry::Instance().Get(row.scenario);
  ParamMap params;
  std::string note;
  for (const char* assign : param_assigns) {
    params.ParseAssign(assign);
    note += (note.empty() ? "params=" : ",") + std::string(assign);
  }
  const systest::Harness harness = scenario.make(params);
  TestConfig config =
      scenario.default_config ? scenario.default_config() : TestConfig{};
  config.iterations = iterations * iteration_factor;
  config.stateful = true;

  config.max_visited = kOldCap;
  config.max_visited_hot = kOldCap;  // hot == total: exactly the flat set
  EmitRow(std::string("stateful_dedup/") + row.domain + "/sat1m", config,
          harness, row.scenario, note);

  config.max_visited = kOldCap * kRecoveryFactor;
  config.max_visited_hot = kOldCap;  // overflow compacts into runs
  EmitRow(std::string("stateful_dedup/") + row.domain + "/tiered100x", config,
          harness, row.scenario, note);
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseArgs(argc, argv);
  std::uint64_t iterations = 1000;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") continue;
    iterations = std::strtoull(argv[i], nullptr, 10);
  }
  if (!bench::JsonMode()) {
    std::printf("stateful dedup bench (%llu iterations per scenario)\n",
                static_cast<unsigned long long>(iterations));
  }
  for (const DomainRow& row : kDomains) {
    RunDomain(row, iterations);
  }
  if (!bench::JsonMode()) {
    std::printf(
        "flat-cap saturation vs tiered recovery (budget %llux the 1M cap)\n",
        static_cast<unsigned long long>(kRecoveryFactor));
  }
  RunRecovery(kDomains[2], iterations, 1);  // vnext overflows at base scale
  // samplerepl needs the bigger harness to overflow 1M (see header).
  RunRecovery(kDomains[0], iterations, 4,
              {"nodes=5", "requests=4", "value-space=5"});
  return 0;
}
