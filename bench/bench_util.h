// Shared helpers for the SysTest benches: runs a harness under a scheduler
// with the paper's 100,000-execution budget and prints Table 2-style rows
// (BF?, time-to-bug in seconds, #NDC — the number of nondeterministic
// choices in the first execution that found the bug).
//
// Every non-gbench bench accepts a `--json` flag (see ParseArgs): instead of
// the human-readable table it then emits one JSON object per row of the form
//   {"bench":..., "executions_per_sec":..., "steps_per_sec":..., "config":...}
// which is the line format collected in BENCH_baseline.json and by the CI
// perf-smoke job.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>
#include <thread>

#if defined(__linux__)
#include <sched.h>
#endif

#include "core/systest.h"

namespace bench {

struct RowResult {
  bool found = false;
  double seconds = 0.0;
  std::uint64_t ndc = 0;
  std::uint64_t executions = 0;
  double executions_per_sec = 0.0;
  double steps_per_sec = 0.0;
};

/// Global output mode toggled by --json on any bench command line.
inline bool& JsonMode() {
  static bool json = false;
  return json;
}

/// Scans argv for --json; leaves positional arguments alone so existing
/// benches keep their ad-hoc argument parsing.
inline void ParseArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--json") {
      JsonMode() = true;
    }
  }
}

/// Hardware context for every JSON config line: the machine's hardware
/// thread count plus the cores actually AVAILABLE to this process (cgroup /
/// affinity limited — CI containers routinely expose 1 of many). Numbers
/// from differently-sized boxes are not comparable; this makes the mismatch
/// visible in the committed baselines instead of a mystery regression.
inline std::string HardwareDescription() {
  unsigned available = std::thread::hardware_concurrency();
#if defined(__linux__)
  cpu_set_t set;
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    available = static_cast<unsigned>(CPU_COUNT(&set));
  }
#endif
  return "hw_conc=" + std::to_string(std::thread::hardware_concurrency()) +
         " cores=" + std::to_string(available);
}

/// Emits one machine-readable result line (see header comment).
/// `extra_fields` is raw JSON injected as additional TOP-LEVEL fields (e.g.
/// "\"hit_rate\":0.39") so tools/bench_compare.py can track bench-specific
/// metrics without parsing the free-form config string; empty adds nothing.
inline void EmitJson(const std::string& name, double executions_per_sec,
                     double steps_per_sec, const std::string& config,
                     const std::string& extra_fields = std::string()) {
  std::printf(
      "{\"bench\":\"%s\",\"executions_per_sec\":%.1f,"
      "\"steps_per_sec\":%.1f,%s%s\"config\":\"%s %s\"}\n",
      name.c_str(), executions_per_sec, steps_per_sec, extra_fields.c_str(),
      extra_fields.empty() ? "" : ",", config.c_str(),
      HardwareDescription().c_str());
  std::fflush(stdout);
}

/// One-line description of the engine configuration for the JSON output.
inline std::string DescribeConfig(const systest::TestConfig& config) {
  return config.strategy.str() +
         " iters=" + std::to_string(config.iterations) +
         " max_steps=" + std::to_string(config.max_steps) +
         " seed=" + std::to_string(config.seed);
}

/// Runs `harness` under `config` and prints one Table 2-style row (or one
/// JSON line in --json mode).
inline RowResult RunRow(const std::string& label,
                        const systest::TestConfig& config,
                        const systest::Harness& harness) {
  systest::TestingEngine engine(config, harness);
  const systest::TestReport report = engine.Run();
  RowResult row;
  row.found = report.bug_found;
  row.seconds = report.seconds_to_bug;
  row.ndc = report.ndc;
  row.executions = report.executions;
  if (report.total_seconds > 0) {
    row.executions_per_sec =
        static_cast<double>(report.executions) / report.total_seconds;
    row.steps_per_sec =
        static_cast<double>(report.total_steps) / report.total_seconds;
  }
  if (JsonMode()) {
    EmitJson(label, row.executions_per_sec, row.steps_per_sec,
             DescribeConfig(config) +
                 (report.bug_found ? " bug_found=1" : " bug_found=0"));
    return row;
  }
  if (report.bug_found) {
    std::printf("  %-42s  %-3s  %10.3f  %8llu   (iteration %llu)\n",
                label.c_str(), "yes", report.seconds_to_bug,
                static_cast<unsigned long long>(report.ndc),
                static_cast<unsigned long long>(report.bug_iteration));
  } else {
    std::printf("  %-42s  %-3s  %10s  %8s   (%llu executions)\n",
                label.c_str(), "no", "-", "-",
                static_cast<unsigned long long>(report.executions));
  }
  std::fflush(stdout);
  return row;
}

inline void PrintHeader(const std::string& title) {
  if (JsonMode()) {
    return;
  }
  std::printf("\n%s\n", title.c_str());
  std::printf("  %-42s  %-3s  %10s  %8s\n", "Bug Identifier", "BF?",
              "TimeToBug(s)", "#NDC");
  std::printf(
      "  ------------------------------------------  ---  ----------  "
      "--------\n");
  std::fflush(stdout);
}

}  // namespace bench
