// Shared helpers for the SysTest benches: runs a harness under a scheduler
// with the paper's 100,000-execution budget and prints Table 2-style rows
// (BF?, time-to-bug in seconds, #NDC — the number of nondeterministic
// choices in the first execution that found the bug).
#pragma once

#include <cstdio>
#include <string>

#include "core/systest.h"

namespace bench {

struct RowResult {
  bool found = false;
  double seconds = 0.0;
  std::uint64_t ndc = 0;
  std::uint64_t executions = 0;
};

/// Runs `harness` under `config` and prints one Table 2-style row.
inline RowResult RunRow(const std::string& label,
                        const systest::TestConfig& config,
                        const systest::Harness& harness) {
  systest::TestingEngine engine(config, harness);
  const systest::TestReport report = engine.Run();
  RowResult row;
  row.found = report.bug_found;
  row.seconds = report.seconds_to_bug;
  row.ndc = report.ndc;
  row.executions = report.executions;
  if (report.bug_found) {
    std::printf("  %-42s  %-3s  %10.3f  %8llu   (iteration %llu)\n",
                label.c_str(), "yes", report.seconds_to_bug,
                static_cast<unsigned long long>(report.ndc),
                static_cast<unsigned long long>(report.bug_iteration));
  } else {
    std::printf("  %-42s  %-3s  %10s  %8s   (%llu executions)\n",
                label.c_str(), "no", "-", "-",
                static_cast<unsigned long long>(report.executions));
  }
  std::fflush(stdout);
  return row;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n%s\n", title.c_str());
  std::printf("  %-42s  %-3s  %10s  %8s\n", "Bug Identifier", "BF?",
              "TimeToBug(s)", "#NDC");
  std::printf(
      "  ------------------------------------------  ---  ----------  "
      "--------\n");
  std::fflush(stdout);
}

}  // namespace bench
