// Reproduces the MigratingTable block of Table 2 (case study "2"): the
// eleven re-introducible bugs, each explored with the P#-style random and
// randomized priority-based (PCT) schedulers under a 100,000-execution
// budget. Bugs the default harness misses are retried with a custom test
// case (marked "custom:" — the paper's dagger rows).
#include <vector>

#include "bench/bench_util.h"
#include "mtable/harness.h"

namespace {

systest::TestConfig Config(systest::StrategyName strategy) {
  systest::TestConfig config = mtable::DefaultConfig(strategy);
  config.iterations = 100'000;      // the paper's budget
  config.time_budget_seconds = 60;  // wall-clock cap per row
  return config;
}

/// Custom test case pinning DeletePrimaryKey: an operation in one partition
/// followed by a delete in another.
std::vector<std::vector<mtable::ScriptedOp>> DeletePrimaryKeyScript() {
  using mtable::ScriptedOp;
  ScriptedOp touch;
  touch.kind = ScriptedOp::Kind::kRetrieve;
  touch.partition = 0;
  ScriptedOp del;
  del.kind = ScriptedOp::Kind::kDelete;
  del.partition = 1;
  return {{touch, del}};
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseArgs(argc, argv);
  if (!bench::JsonMode()) {
    std::printf("Table 2 — MigratingTable (case study 2)\n");
    std::printf("100,000-execution budget (60s wall-clock cap per row); "
                "PCT budget: 2 priority change points\n");
  }

  for (const char* strategy : {"random", "pct"}) {
    bench::PrintHeader(std::string("scheduler: ") + strategy);
    for (const mtable::MTableBugId id : mtable::kAllMTableBugs) {
      mtable::MigrationHarnessOptions options;
      options.bugs = EnableBug(id);
      const bench::RowResult row =
          bench::RunRow(std::string(ToString(id)), Config(strategy),
                        mtable::MakeMigrationHarness(options));
      if (!row.found && id == mtable::MTableBugId::kDeletePrimaryKey) {
        options.scripts = DeletePrimaryKeyScript();
        options.num_services = 1;
        bench::RunRow("custom:" + std::string(ToString(id)), Config(strategy),
                      mtable::MakeMigrationHarness(options));
      }
    }
  }
  return 0;
}
