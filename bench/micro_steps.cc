// Runtime hot-path microbench, no google-benchmark dependency — the
// `micro_runtime`-equivalent that always builds. Measures the serialized
// execution core the way the paper's 100k-execution budgets stress it:
//
//   pingpong_steps    raw scheduling-step throughput (send/dequeue/dispatch)
//                     on a two-machine rally, the non-gbench twin of
//                     BM_PingPongSteps
//   samplerepl_exec   whole-execution throughput (setup + run to quiescence
//                     + teardown) of the §2.2 case-study harness under the
//                     random scheduler — the table2 throughput metric
//
// Usage: micro_steps [--json] [pingpong-execs] [samplerepl-iters]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/systest.h"
#include "samplerepl/harness.h"

namespace {

using Clock = std::chrono::steady_clock;

using systest::Event;
using systest::Machine;
using systest::MachineId;

struct Ball final : Event {
  explicit Ball(int n) : n(n) {}
  int n;
};

class PingPong final : public Machine {
 public:
  /// Execution recycling: rounds_/serve_ are const-after-ctor and peer_ is
  /// patched exactly once at harness time (the machine OBJECT persists across
  /// resets, so the patch persists with it).
  static constexpr bool kReusableRuntime = true;

  PingPong(MachineId peer, int rounds, bool serve)
      : peer_(peer), rounds_(rounds), serve_(serve) {
    State("Play").OnEntry(&PingPong::OnStart).On<Ball>(&PingPong::OnBall);
    SetStart("Play");
  }
  MachineId peer_;

 private:
  void OnStart() {
    if (serve_) {
      Send<Ball>(peer_, 0);
    }
  }
  void OnBall(const Ball& ball) {
    if (ball.n < rounds_) {
      Send<Ball>(peer_, ball.n + 1);
    }
  }
  int rounds_;
  bool serve_;
};

double Seconds(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

void RunPingPong(std::uint64_t executions) {
  const int rounds = 1000;
  // Execution recycling: one Runtime + one event arena serve the whole
  // budget (the ExecutionRunner probes the first execution, seals it, and
  // reset-reuses from then on) — the same path TestingEngine takes.
  systest::TestConfig config;
  config.iterations = executions;
  config.max_steps = 1'000'000;
  config.seed = 42;
  config.strategy = "random";
  const systest::Harness harness = [rounds](systest::Runtime& rt) {
    auto a = rt.CreateMachine<PingPong>("A", MachineId{}, rounds, false);
    auto b = rt.CreateMachine<PingPong>("B", a, rounds, true);
    static_cast<PingPong*>(rt.FindMachine(a))->peer_ = b;
  };
  systest::RandomStrategy strategy(config.seed);
  systest::ExecutionRunner runner(config, harness, strategy, nullptr);
  std::uint64_t steps = 0;
  const auto start = Clock::now();
  for (std::uint64_t i = 0; i < executions; ++i) {
    steps += runner.RunOne(i, nullptr).steps;
  }
  const double seconds = Seconds(start);
  const double steps_per_sec = seconds > 0 ? steps / seconds : 0.0;
  const double exec_per_sec = seconds > 0 ? executions / seconds : 0.0;
  if (bench::JsonMode()) {
    bench::EmitJson("pingpong_steps", exec_per_sec, steps_per_sec,
                    "random rounds=" + std::to_string(rounds) +
                        " execs=" + std::to_string(executions));
  } else {
    std::printf("  %-18s  %12.0f steps/s  %10.1f exec/s  (%llu execs, %.3fs)\n",
                "pingpong_steps", steps_per_sec, exec_per_sec,
                static_cast<unsigned long long>(executions), seconds);
  }
}

void RunSampleRepl(std::uint64_t iterations) {
  systest::TestConfig config;
  config.iterations = iterations;
  config.max_steps = 2'000;
  config.seed = 42;
  config.strategy = "random";
  systest::TestingEngine engine(
      config, samplerepl::MakeHarness(samplerepl::HarnessOptions{}));
  const systest::TestReport report = engine.Run();
  const double exec_per_sec =
      report.total_seconds > 0 ? report.executions / report.total_seconds : 0.0;
  const double steps_per_sec =
      report.total_seconds > 0 ? report.total_steps / report.total_seconds
                               : 0.0;
  if (bench::JsonMode()) {
    bench::EmitJson("samplerepl_exec", exec_per_sec, steps_per_sec,
                    bench::DescribeConfig(config));
  } else {
    std::printf("  %-18s  %12.0f steps/s  %10.1f exec/s  (%llu execs, %.3fs)\n",
                "samplerepl_exec", steps_per_sec, exec_per_sec,
                static_cast<unsigned long long>(report.executions),
                report.total_seconds);
  }
  if (report.bug_found) {
    // stderr: keeps the stdout JSON-lines stream parseable in --json mode.
    std::fprintf(stderr, "unexpected bug: %s\n", report.bug_message.c_str());
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseArgs(argc, argv);
  std::vector<std::uint64_t> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") continue;
    positional.push_back(std::strtoull(argv[i], nullptr, 10));
  }
  const std::uint64_t pingpong_execs =
      positional.size() > 0 ? positional[0] : 500;
  const std::uint64_t samplerepl_iters =
      positional.size() > 1 ? positional[1] : 5'000;
  if (!bench::JsonMode()) {
    std::printf("runtime hot-path microbench\n");
  }
  RunPingPong(pingpong_execs);
  RunSampleRepl(samplerepl_iters);
  return 0;
}
