// Guided-search bench: corpus-guided mutation ("mutate") vs the blind
// strategies it races in the portfolio (random, PCT).
//
// Two tables:
//
//  * ttfb — time-to-first-bug. For each bug scenario the same budget is run
//    over several independent seeds per strategy (stop_on_first_bug), and
//    the row reports how many trials found the bug plus the mean executions
//    and wall seconds until the first violation (not-found trials are
//    charged the full budget). This is the paper's Table 2 question asked
//    of the guided strategy: does replay-prefix mutation reach the buggy
//    interleavings faster than blind search?
//
//  * states — distinct-state discovery under a fixed budget
//    (stateful + fingerprint payloads, no early stop). Rows report distinct
//    program states covered, per second and per execution. The corpus
//    energy schedule biases mutate toward prefixes that recently discovered
//    new states, so its win shows up here as coverage rate.
//
// The mutate rows run with a fresh TraceCorpus wired into the engine
// (SetCorpus to feed it, ScopedActiveCorpus so the registry factory hands
// the strategy the same store) — exactly how api::TestSession arms it.
//
// Usage: guided_search [--json] [--only ttfb|states] [iterations] [ttfb-trials]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "api/scenario_registry.h"
#include "bench/bench_util.h"
#include "core/systest.h"
#include "corpus/trace_corpus.h"

namespace {

using systest::TestConfig;
using systest::TestingEngine;
using systest::TestReport;
using systest::api::ParamMap;
using systest::api::Scenario;
using systest::api::ScenarioRegistry;
using systest::corpus::ScopedActiveCorpus;
using systest::corpus::TraceCorpus;

constexpr const char* kStrategies[] = {"random", "pct", "mutate"};

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double total = 0.0;
  for (const double x : xs) total += x;
  return total / static_cast<double>(xs.size());
}

double Median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const std::size_t n = xs.size();
  return n % 2 == 1 ? xs[n / 2] : (xs[n / 2 - 1] + xs[n / 2]) / 2.0;
}

/// Runs one configured engine; mutate rows get a fresh corpus for the run.
TestReport RunOnce(const TestConfig& config, const systest::Harness& harness) {
  if (config.corpus_mutation) {
    TraceCorpus corpus;
    const ScopedActiveCorpus active(&corpus);
    TestingEngine engine(config, harness);
    engine.SetCorpus(&corpus);
    return engine.Run();
  }
  TestingEngine engine(config, harness);
  return engine.Run();
}

TestConfig BaseConfig(const Scenario& scenario, const char* strategy,
                      std::uint64_t iterations) {
  TestConfig config =
      scenario.default_config ? scenario.default_config() : TestConfig{};
  config.iterations = iterations;
  config.strategy = strategy;
  config.stateful = true;  // the interest signal mutate feeds on
  if (std::string(strategy) == "mutate") {
    config.corpus_mutation = true;
  }
  return config;
}

// ---------------------------------------------------------------------------
// Table 1: time-to-first-bug.

void RunTtfb(const char* scenario_name, const ParamMap& params,
             std::uint64_t iterations, int trials) {
  const Scenario& scenario = ScenarioRegistry::Instance().Get(scenario_name);
  const systest::Harness harness = scenario.make(params);
  for (const char* strategy : kStrategies) {
    TestConfig config = BaseConfig(scenario, strategy, iterations);
    config.stop_on_first_bug = true;
    int found = 0;
    double total_all_seconds = 0.0;
    std::vector<double> execs_to_bug;
    std::vector<double> seconds_to_bug;
    for (int trial = 0; trial < trials; ++trial) {
      config.seed = scenario.default_config
                        ? scenario.default_config().seed + 1013 * trial
                        : 1 + 1013 * trial;
      const TestReport report = RunOnce(config, harness);
      total_all_seconds += report.total_seconds;
      if (report.bug_found) {
        ++found;
        execs_to_bug.push_back(static_cast<double>(report.bug_iteration));
        seconds_to_bug.push_back(report.seconds_to_bug);
      } else {
        // Charge the full budget: not finding the bug is the worst outcome.
        execs_to_bug.push_back(static_cast<double>(report.executions));
        seconds_to_bug.push_back(report.total_seconds);
      }
    }
    // Time-to-bug is heavy-tailed (one lucky/unlucky seed dominates a mean),
    // so the headline statistic is the median over trials.
    const double median_execs = Median(execs_to_bug);
    const double median_seconds = Median(seconds_to_bug);
    const double mean_execs = Mean(execs_to_bug);
    const double mean_seconds = Mean(seconds_to_bug);
    const std::string name = std::string("guided_search/ttfb/") +
                             scenario_name + "/" + strategy;
    if (bench::JsonMode()) {
      char extra[256];
      std::snprintf(extra, sizeof(extra),
                    "trials=%d found=%d median_execs_to_bug=%.1f "
                    "median_seconds_to_bug=%.4f mean_execs_to_bug=%.1f "
                    "mean_seconds_to_bug=%.4f iters=%llu",
                    trials, found, median_execs, median_seconds, mean_execs,
                    mean_seconds, static_cast<unsigned long long>(iterations));
      bench::EmitJson(name, median_execs, median_seconds, extra);
    } else {
      std::printf(
          "  %-46s  %2d/%2d found  median %7.1f execs / %8.4fs  "
          "mean %7.1f / %8.4fs  (%.2fs)\n",
          name.c_str(), found, trials, median_execs, median_seconds,
          mean_execs, mean_seconds, total_all_seconds);
    }
  }
}

// ---------------------------------------------------------------------------
// Table 2: distinct-state discovery rate.

/// One strategy's discovery trajectory: every (cumulative distinct states,
/// elapsed seconds) point at which an execution discovered something new.
struct Trajectory {
  std::vector<std::pair<std::uint64_t, double>> points;
  std::uint64_t final_distinct = 0;
  double total_seconds = 0.0;
  std::uint64_t executions = 0;

  /// Earliest wall time at which coverage reached `target` (-1 if never).
  [[nodiscard]] double SecondsTo(std::uint64_t target) const {
    for (const auto& [cum, secs] : points) {
      if (cum >= target) return secs;
    }
    return -1.0;
  }

  /// Coverage reached within the first `seconds` of wall clock.
  [[nodiscard]] std::uint64_t StatesWithin(double seconds) const {
    std::uint64_t best = 0;
    for (const auto& [cum, secs] : points) {
      if (secs > seconds) break;
      best = cum;
    }
    return best;
  }
};

Trajectory RunTrajectory(const TestConfig& base,
                         const systest::Harness& harness) {
  TestConfig config = base;
  Trajectory out;
  std::uint64_t cum = 0;
  const auto start = std::chrono::steady_clock::now();
  const auto run = [&](TestingEngine& engine) {
    engine.SetIterationCallback(
        [&](std::uint64_t, const systest::ExecutionResult& result) {
          if (result.fingerprint_misses > 0) {
            cum += result.fingerprint_misses;
            const std::chrono::duration<double> elapsed =
                std::chrono::steady_clock::now() - start;
            out.points.emplace_back(cum, elapsed.count());
          }
        });
    const TestReport report = engine.Run();
    out.final_distinct = report.distinct_states;
    out.total_seconds = report.total_seconds;
    out.executions = report.executions;
  };
  if (config.corpus_mutation) {
    TraceCorpus corpus;
    const ScopedActiveCorpus active(&corpus);
    TestingEngine engine(config, harness);
    engine.SetCorpus(&corpus);
    run(engine);
  } else {
    TestingEngine engine(config, harness);
    run(engine);
  }
  return out;
}

void RunStates(const char* scenario_name, const ParamMap& params,
               std::uint64_t iterations) {
  const Scenario& scenario = ScenarioRegistry::Instance().Get(scenario_name);
  const systest::Harness harness = scenario.make(params);
  // Every strategy runs the same EXECUTION budget, but strategies differ in
  // cost per execution (mutated executions replay a prefix un-pruned), so
  // the per-second headline is computed at EQUAL WALL CLOCK: the random
  // baseline's full-budget wall time is the time slice, and each strategy is
  // scored on the distinct states its own trajectory had covered within that
  // slice. That is the operator's actual question — same seconds of CPU,
  // which strategy covered more states? — and it can't be gamed from either
  // side (averaging over the full budget would instead mostly measure how
  // long the blind runner idles after its discovery plateau).
  Trajectory rows[std::size(kStrategies)];
  for (std::size_t i = 0; i < std::size(kStrategies); ++i) {
    TestConfig config = BaseConfig(scenario, kStrategies[i], iterations);
    config.stop_on_first_bug = false;  // full budget even on buggy scenarios
    config.fingerprint_payloads = true;
    rows[i] = RunTrajectory(config, harness);
  }
  const double slice = rows[0].total_seconds;  // random's full wall time
  const std::uint64_t target = rows[0].final_distinct;
  for (std::size_t i = 0; i < std::size(kStrategies); ++i) {
    const Trajectory& row = rows[i];
    const std::uint64_t states_in_slice = row.StatesWithin(slice);
    const double states_per_sec =
        slice > 0 ? static_cast<double>(states_in_slice) / slice : 0.0;
    const double to_target = row.SecondsTo(target);
    const double states_per_exec =
        row.executions > 0 ? static_cast<double>(row.final_distinct) /
                                 static_cast<double>(row.executions)
                           : 0.0;
    const std::string name = std::string("guided_search/states/") +
                             scenario_name + "/" + kStrategies[i];
    if (bench::JsonMode()) {
      char extra[320];
      std::snprintf(
          extra, sizeof(extra),
          "wall_slice=%.4f states_in_slice=%llu baseline_target=%llu "
          "seconds_to_target=%.4f distinct_states=%llu "
          "distinct_per_exec=%.3f total_seconds=%.4f iters=%llu",
          slice, static_cast<unsigned long long>(states_in_slice),
          static_cast<unsigned long long>(target), to_target,
          static_cast<unsigned long long>(row.final_distinct),
          states_per_exec, row.total_seconds,
          static_cast<unsigned long long>(iterations));
      bench::EmitJson(name, states_per_sec, states_per_exec, extra);
    } else {
      std::printf(
          "  %-46s  %8llu in %.3fs slice -> %9.0f/s  (final %8llu, "
          "%7.3f/exec, %.2fs)\n",
          name.c_str(), static_cast<unsigned long long>(states_in_slice),
          slice, states_per_sec,
          static_cast<unsigned long long>(row.final_distinct),
          states_per_exec, row.total_seconds);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseArgs(argc, argv);
  std::uint64_t iterations = 1500;
  int trials = 8;
  bool run_ttfb = true;
  bool run_states = true;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") continue;
    if (arg == "--only" && i + 1 < argc) {
      const std::string which = argv[++i];
      run_ttfb = which == "ttfb";
      run_states = which == "states";
      continue;
    }
    if (positional == 0) {
      iterations = std::strtoull(arg.c_str(), nullptr, 10);
    } else {
      trials = static_cast<int>(std::strtol(arg.c_str(), nullptr, 10));
    }
    ++positional;
  }
  if (!bench::JsonMode()) {
    std::printf("guided search bench (%llu iterations, %d ttfb trials)\n",
                static_cast<unsigned long long>(iterations), trials);
  }
  // Time-to-first-bug. The node-crash safety bug is scaled up (7 nodes, all
  // seven syncs counted before the Ack, three requests) so the buggy
  // interleaving — a crash of a counted node in exactly the pre-Ack window —
  // is a needle blind search cannot hit in a handful of executions; the
  // mtable matrix row is a protocol bug none of the strategies reaches at
  // bench budgets (rows tie at the full budget — kept as the honesty check
  // that guidance does not regress a hard target).
  if (run_ttfb) {
    const ParamMap hard_crash{
        {"nodes", "7"}, {"replica-target", "7"}, {"requests", "3"}};
    RunTtfb("samplerepl-node-crash", hard_crash, iterations, trials);
    RunTtfb("mtable-backupnewstream", ParamMap{}, iterations / 4,
            trials / 2 > 0 ? trials / 2 : 1);
  }
  // Distinct-state coverage across three domains.
  if (run_states) {
    RunStates("samplerepl-node-crash", ParamMap{}, iterations);
    RunStates("chaintable-lost-update", ParamMap{}, iterations);
    RunStates("mtable-migration", ParamMap{}, iterations / 4);
  }
  return 0;
}
