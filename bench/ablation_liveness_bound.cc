// Ablation "Figure B": sensitivity of liveness detection to the §2.5
// bounded-infinite-execution heuristic. For the vNext liveness bug, sweeps
// the per-execution step bound (with threshold = bound * 0.4) and reports
// detection and false-positive behavior: too small a bound cannot fit the
// failure-then-stuck pattern; the fixed system must stay clean at every
// bound (no false positives).
#include <cstdio>

#include "bench/bench_util.h"
#include "core/systest.h"
#include "vnext/harness.h"

namespace {

void Sweep(bool fixed) {
  if (!bench::JsonMode()) {
    std::printf("%s Extent Manager:\n", fixed ? "fixed" : "buggy");
    std::printf("  %10s  %10s  %7s  %12s  %10s\n", "max_steps", "threshold",
                "found", "iterations", "time(s)");
  }
  for (const std::uint64_t max_steps :
       {200ull, 500ull, 1000ull, 2000ull, 3000ull, 5000ull}) {
    vnext::DriverOptions options;
    options.manager.fix_stale_sync_report = fixed;
    systest::TestConfig config =
        vnext::DefaultConfig("random");
    config.max_steps = max_steps;
    config.liveness_temperature_threshold = max_steps * 2 / 5;
    config.iterations = fixed ? 500 : 20'000;
    config.time_budget_seconds = 30;
    const systest::TestReport report =
        systest::TestingEngine(config, vnext::MakeExtentRepairHarness(options))
            .Run();
    if (bench::JsonMode()) {
      bench::EmitJson(
          std::string("ablation_liveness_bound/") +
              (fixed ? "fixed" : "buggy"),
          report.total_seconds > 0 ? report.executions / report.total_seconds
                                   : 0.0,
          report.total_seconds > 0 ? report.total_steps / report.total_seconds
                                   : 0.0,
          "max_steps=" + std::to_string(max_steps) +
              " bug_found=" + (report.bug_found ? "1" : "0"));
      continue;
    }
    std::printf("  %10llu  %10llu  %7s  %12llu  %10.3f\n",
                static_cast<unsigned long long>(max_steps),
                static_cast<unsigned long long>(
                    config.liveness_temperature_threshold),
                report.bug_found ? "yes" : "no",
                static_cast<unsigned long long>(
                    report.bug_found ? report.bug_iteration
                                     : report.executions),
                report.bug_found ? report.seconds_to_bug
                                 : report.total_seconds);
    std::fflush(stdout);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseArgs(argc, argv);
  if (!bench::JsonMode()) {
    std::printf("Ablation B — liveness bound sensitivity "
                "(vNext ExtentNodeLivenessViolation)\n\n");
  }
  Sweep(/*fixed=*/false);
  if (!bench::JsonMode()) {
    std::printf("\n");
  }
  Sweep(/*fixed=*/true);
  if (!bench::JsonMode()) {
    std::printf(
        "\nExpected shape: with very small bounds the failure/repair "
        "pattern\n"
        "does not fit before the bound, hurting detection or soundness; "
        "from\n"
        "a moderate bound upward the bug is found quickly and the fixed\n"
        "system reports no false positives.\n");
  }
  return 0;
}
