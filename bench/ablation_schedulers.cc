// Ablation "Figure A": scheduling-strategy comparison beyond the paper's
// two. For a representative bug from each case study, measures executions-
// to-bug (median over seeds) for random, PCT with several priority-change
// budgets, delay-bounded and round-robin scheduling.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/systest.h"
#include "fabric/harness.h"
#include "mtable/harness.h"
#include "samplerepl/harness.h"
#include "vnext/harness.h"

namespace {

struct Strategy {
  const char* label;
  const char* name;  ///< StrategyRegistry name
  int budget;
};

constexpr Strategy kStrategies[] = {
    {"random", "random", 0},
    {"pct(1)", "pct", 1},
    {"pct(2)", "pct", 2},
    {"pct(3)", "pct", 3},
    {"pct(10)", "pct", 10},
    {"delay-bounded(2)", "delay-bounded", 2},
    {"round-robin", "round-robin", 0},
};

constexpr std::uint64_t kSeeds[] = {1, 7, 42, 1234, 2016};

/// Median executions-to-bug over the seeds; 0 = not found within budget.
void Sweep(const char* bug_label, systest::TestConfig base,
           const systest::Harness& harness) {
  if (!bench::JsonMode()) {
    std::printf("  %-36s", bug_label);
  }
  for (const Strategy& strategy : kStrategies) {
    std::vector<std::uint64_t> counts;
    std::uint64_t executions = 0;
    std::uint64_t steps = 0;
    double seconds = 0.0;
    for (const std::uint64_t seed : kSeeds) {
      systest::TestConfig config = base;
      config.strategy = strategy.name;
      config.strategy_budget = strategy.budget;
      config.seed = seed;
      const systest::TestReport report =
          systest::TestingEngine(config, harness).Run();
      counts.push_back(report.bug_found ? report.bug_iteration : 0);
      executions += report.executions;
      steps += report.total_steps;
      seconds += report.total_seconds;
    }
    std::sort(counts.begin(), counts.end());
    const std::uint64_t median = counts[counts.size() / 2];
    if (bench::JsonMode()) {
      bench::EmitJson(std::string("ablation_schedulers/") + bug_label,
                      seconds > 0 ? executions / seconds : 0.0,
                      seconds > 0 ? steps / seconds : 0.0,
                      std::string(strategy.label) + " median_execs_to_bug=" +
                          (median == 0 ? ">budget" : std::to_string(median)));
    } else if (median == 0) {
      std::printf("  %9s", ">budget");
    } else {
      std::printf("  %9llu", static_cast<unsigned long long>(median));
    }
  }
  if (!bench::JsonMode()) {
    std::printf("\n");
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseArgs(argc, argv);
  if (!bench::JsonMode()) {
    std::printf("Ablation A — median executions-to-bug over %zu seeds\n",
                std::size(kSeeds));
    std::printf("  %-36s", "bug");
    for (const Strategy& strategy : kStrategies) {
      std::printf("  %9s", strategy.label);
    }
    std::printf("\n");
  }

  {
    samplerepl::HarnessOptions options;
    options.bugs.non_unique_replica_count = true;
    systest::TestConfig config;
    config.iterations = 20'000;
    config.max_steps = 2'000;
    config.time_budget_seconds = 20;
    Sweep("samplerepl/NonUniqueReplicaCount", config,
          samplerepl::MakeHarness(options));
  }
  {
    vnext::DriverOptions options;  // buggy by default
    systest::TestConfig config =
        vnext::DefaultConfig("random");
    config.iterations = 5'000;
    config.time_budget_seconds = 30;
    Sweep("vnext/ExtentNodeLivenessViolation", config,
          vnext::MakeExtentRepairHarness(options));
  }
  {
    mtable::MigrationHarnessOptions options;
    options.bugs = EnableBug(mtable::MTableBugId::kInsertBehindMigrator);
    systest::TestConfig config =
        mtable::DefaultConfig("random");
    config.iterations = 20'000;
    config.time_budget_seconds = 30;
    Sweep("mtable/InsertBehindMigrator", config,
          mtable::MakeMigrationHarness(options));
  }
  {
    mtable::MigrationHarnessOptions options;
    options.bugs = EnableBug(mtable::MTableBugId::kQueryStreamedLock);
    systest::TestConfig config =
        mtable::DefaultConfig("random");
    config.iterations = 20'000;
    config.time_budget_seconds = 30;
    Sweep("mtable/QueryStreamedLock", config,
          mtable::MakeMigrationHarness(options));
  }
  {
    fabric::FailoverOptions options;
    options.bugs.promote_during_copy = true;
    systest::TestConfig config =
        fabric::DefaultConfig("random");
    config.iterations = 20'000;
    config.time_budget_seconds = 30;
    Sweep("fabric/PromoteDuringCopy", config,
          fabric::MakeFailoverHarness(options));
  }

  std::printf(
      "\nShape to compare with the paper: random scheduling is competitive\n"
      "across the board; PCT's small change-point budgets find some bugs\n"
      "dramatically faster (the paper's QueryStreamedLock went from 2121s\n"
      "to 6.6s); deterministic round-robin misses race-dependent bugs.\n");
  return 0;
}
