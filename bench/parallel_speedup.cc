// Parallel exploration throughput: executions/sec vs worker count on the
// random-strategy micro harness (a clean ping-pong system, so the full
// iteration budget always runs — no early bug exit skews the rate).
//
// The workload is embarrassingly parallel (ISSUE/ROADMAP: each iteration is
// an independent serialized execution), so on a machine with >= 8 hardware
// threads the 8-worker row should show >= 3x the single-worker rate. On
// fewer cores the rate plateaus at the hardware parallelism — the table
// prints both the measured speedup and the detected core count so results
// are interpretable anywhere.
//
// Usage: parallel_speedup [iterations-per-worker-count] (default 4000)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/systest.h"
#include "explore/parallel_engine.h"

namespace {

using systest::Event;
using systest::Machine;
using systest::MachineId;

struct Ball final : Event {
  explicit Ball(int bounces_left) : bounces_left(bounces_left) {}
  int bounces_left;
};

/// Two paddles bounce a ball a fixed number of times, with a nondet choice
/// per bounce to exercise the trace path; the system always quiesces.
class Paddle final : public Machine {
 public:
  Paddle() {
    State("Play").On<Ball>(&Paddle::OnBall);
    SetStart("Play");
  }

  void SetPeer(MachineId peer) { peer_ = peer; }

 private:
  void OnBall(const Ball& ball) {
    if (ball.bounces_left <= 0) return;
    (void)NondetBool();
    Send<Ball>(peer_, ball.bounces_left - 1);
  }
  MachineId peer_;
};

class Server final : public Machine {
 public:
  Server() {
    State("Init").OnEntry(&Server::OnStart).On<Ball>(&Server::OnBall);
    SetStart("Init");
  }

 private:
  void OnStart() {
    // Two independent rallies so there is real scheduling nondeterminism.
    for (int rally = 0; rally < 2; ++rally) {
      auto a = Create<Paddle>("PaddleA" + std::to_string(rally));
      auto b = Create<Paddle>("PaddleB" + std::to_string(rally));
      auto* pa = static_cast<Paddle*>(Rt().FindMachine(a));
      auto* pb = static_cast<Paddle*>(Rt().FindMachine(b));
      pa->SetPeer(b);
      pb->SetPeer(a);
      Send<Ball>(a, 16);
    }
  }
  void OnBall(const Ball&) {}
};

systest::Harness PingPongHarness() {
  return [](systest::Runtime& rt) { rt.CreateMachine<Server>("Server"); };
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseArgs(argc, argv);
  std::uint64_t iterations = 4'000;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") continue;
    iterations = std::strtoull(argv[i], nullptr, 10);
    break;
  }

  if (!bench::JsonMode()) {
    std::printf("parallel exploration speedup — random strategy, ping-pong "
                "micro harness\n");
    std::printf("budget: %llu executions per row; hardware threads: %u\n\n",
                static_cast<unsigned long long>(iterations),
                std::thread::hardware_concurrency());
    std::printf("  %-8s  %12s  %12s  %10s  %8s\n", "workers", "executions",
                "exec/sec", "wall(s)", "speedup");
    std::printf(
        "  --------  ------------  ------------  ----------  --------\n");
  }

  double base_rate = 0.0;
  for (const int workers : {1, 2, 4, 8}) {
    systest::TestConfig config;
    config.iterations = iterations;
    config.max_steps = 1'000;
    config.seed = 99;
    config.strategy = "random";
    config.stop_on_first_bug = true;  // clean harness: never triggers

    systest::explore::ParallelOptions options;
    options.threads = workers;
    options.verify_replay = false;
    systest::explore::ParallelTestingEngine engine(config, PingPongHarness(),
                                                   options);
    const systest::explore::ParallelTestReport report = engine.Run();
    const double rate =
        report.aggregate.total_seconds > 0
            ? static_cast<double>(report.aggregate.executions) /
                  report.aggregate.total_seconds
            : 0.0;
    if (workers == 1) base_rate = rate;
    if (bench::JsonMode()) {
      const double steps_rate =
          report.aggregate.total_seconds > 0
              ? static_cast<double>(report.aggregate.total_steps) /
                    report.aggregate.total_seconds
              : 0.0;
      bench::EmitJson("parallel_speedup/workers=" + std::to_string(workers),
                      rate, steps_rate,
                      "random iters=" + std::to_string(iterations) +
                          " max_steps=1000 seed=99");
    } else {
      std::printf("  %-8d  %12llu  %12.0f  %10.3f  %7.2fx\n", workers,
                  static_cast<unsigned long long>(report.aggregate.executions),
                  rate, report.aggregate.total_seconds,
                  base_rate > 0 ? rate / base_rate : 0.0);
    }
    if (report.aggregate.bug_found) {
      // stderr: keeps the stdout JSON-lines stream parseable in --json mode.
      std::fprintf(stderr, "unexpected bug: %s\n",
                   report.aggregate.bug_message.c_str());
      return 1;
    }
  }
  if (!bench::JsonMode()) {
    std::printf("\n(speedup tracks min(workers, hardware threads); the "
                "schedule spaces explored by each row are identical unions of "
                "disjoint per-worker seed ranges)\n");
  }
  return 0;
}
