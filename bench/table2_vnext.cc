// Reproduces the vNext row of Table 2 (case study 1): the
// ExtentNodeLivenessViolation bug under the random and PCT schedulers with a
// 100,000-execution budget. The paper found it in ~11s with ~9,000
// nondeterministic choices on both schedulers; the liveness nature of the
// bug (bounded-infinite executions) makes #NDC much larger than for the
// safety bugs, which should reproduce here.
#include "bench/bench_util.h"
#include "vnext/harness.h"

int main(int argc, char** argv) {
  bench::ParseArgs(argc, argv);
  if (!bench::JsonMode()) {
    std::printf("Table 2 — Azure Storage vNext (case study 1)\n");
    std::printf("100,000-execution budget (120s wall-clock cap per row); "
                "PCT budget: 2 priority change points\n");
  }

  for (const char* strategy : {"random", "pct"}) {
    bench::PrintHeader(std::string("scheduler: ") + strategy);
    vnext::DriverOptions options;
    options.manager.fix_stale_sync_report = false;  // re-introduce the bug
    systest::TestConfig config = vnext::DefaultConfig(strategy);
    config.time_budget_seconds = 120;
    bench::RunRow("ExtentNodeLivenessViolation", config,
                  vnext::MakeExtentRepairHarness(options));
  }

  // Control: the fixed Extent Manager must survive a sizeable budget.
  bench::PrintHeader("control: fix_stale_sync_report = true (random)");
  vnext::DriverOptions fixed;
  fixed.manager.fix_stale_sync_report = true;
  systest::TestConfig config =
      vnext::DefaultConfig("random");
  config.iterations = 2'000;
  bench::RunRow("ExtentNodeLivenessViolation(fixed)", config,
                vnext::MakeExtentRepairHarness(fixed));
  return 0;
}
