// Metrics-plane overhead bench, no google-benchmark dependency — the cost of
// running a campaign with the observability plane armed. Two workloads, each
// measured with the probe detached and attached:
//
//   pingpong     raw scheduling-step throughput on a two-machine rally (the
//                worst case: nearly every step is a delivery, so the probe's
//                per-delivery branch fires constantly)
//   samplerepl   whole-execution throughput of the §2.2 case-study harness,
//                the representative campaign workload
//
// The contract (pinned by CI perf-smoke): <=2% steps/s on the representative
// samplerepl campaign, <5% even on the adversarial pingpong rally where a
// step is ~35ns of pure scheduling. In --json mode each row reports
// overhead_pct in `config`.
//
// Usage: metrics_overhead [--json] [pingpong-execs] [samplerepl-iters]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "core/systest.h"
#include "obs/campaign.h"
#include "obs/metrics.h"
#include "samplerepl/harness.h"

namespace {

using Clock = std::chrono::steady_clock;

using systest::Event;
using systest::Machine;
using systest::MachineId;

struct Ball final : Event {
  explicit Ball(int n) : n(n) {}
  int n;
};

class PingPong final : public Machine {
 public:
  PingPong(MachineId peer, int rounds, bool serve)
      : peer_(peer), rounds_(rounds), serve_(serve) {
    State("Play").OnEntry(&PingPong::OnStart).On<Ball>(&PingPong::OnBall);
    SetStart("Play");
  }
  MachineId peer_;

 private:
  void OnStart() {
    if (serve_) {
      Send<Ball>(peer_, 0);
    }
  }
  void OnBall(const Ball& ball) {
    if (ball.n < rounds_) {
      Send<Ball>(peer_, ball.n + 1);
    }
  }
  int rounds_;
  bool serve_;
};

double Seconds(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Measurement {
  double steps_per_sec = 0.0;
  double exec_per_sec = 0.0;
};

/// Raw Runtime stepping with an optional probe attached, mirroring
/// micro_steps' pingpong loop so the off numbers are comparable.
Measurement RunPingPong(std::uint64_t executions, bool metrics_on) {
  const int rounds = 1'000;
  systest::obs::MetricsRegistry registry;
  systest::obs::CampaignMetrics metrics(registry);
  systest::obs::WorkerObs obs(metrics, /*worker_index=*/0,
                              /*coverage_enabled=*/false);
  std::uint64_t steps = 0;
  const auto start = Clock::now();
  for (std::uint64_t i = 0; i < executions; ++i) {
    systest::RandomStrategy strategy(42 + i);
    strategy.PrepareIteration(0, 1'000'000);
    systest::RuntimeOptions options;
    options.max_steps = 1'000'000;
    if (metrics_on) {
      obs.BeginExecution();
      options.probe = &obs.probe;
    }
    systest::Runtime rt(strategy, options);
    auto a = rt.CreateMachine<PingPong>("A", MachineId{}, rounds, false);
    auto b = rt.CreateMachine<PingPong>("B", a, rounds, true);
    static_cast<PingPong*>(rt.FindMachine(a))->peer_ = b;
    while (rt.Step()) {
    }
    steps += rt.Steps();
  }
  const double seconds = Seconds(start);
  Measurement m;
  m.steps_per_sec = seconds > 0 ? static_cast<double>(steps) / seconds : 0.0;
  m.exec_per_sec =
      seconds > 0 ? static_cast<double>(executions) / seconds : 0.0;
  return m;
}

/// Whole-campaign throughput through TestingEngine, with the engine-level
/// observability hookup (probe + per-execution flush into the registry).
Measurement RunSampleRepl(std::uint64_t iterations, bool metrics_on) {
  systest::TestConfig config;
  config.iterations = iterations;
  config.max_steps = 2'000;
  config.seed = 42;
  config.strategy = "random";
  systest::obs::MetricsRegistry registry;
  systest::obs::CampaignMetrics metrics(registry);
  systest::TestingEngine engine(
      config, samplerepl::MakeHarness(samplerepl::HarnessOptions{}));
  if (metrics_on) {
    engine.SetObservability(&metrics, /*coverage=*/false);
  }
  const systest::TestReport report = engine.Run();
  if (report.bug_found) {
    std::fprintf(stderr, "unexpected bug: %s\n", report.bug_message.c_str());
    std::exit(1);
  }
  Measurement m;
  if (report.total_seconds > 0) {
    m.steps_per_sec =
        static_cast<double>(report.total_steps) / report.total_seconds;
    m.exec_per_sec =
        static_cast<double>(report.executions) / report.total_seconds;
  }
  return m;
}

void Report(const std::string& name, const Measurement& off,
            const Measurement& on, double overhead,
            const std::string& shape) {
  if (bench::JsonMode()) {
    char config[160];
    std::snprintf(config, sizeof(config),
                  "%s metrics_off_steps_per_sec=%.0f overhead_pct=%.2f",
                  shape.c_str(), off.steps_per_sec, overhead);
    bench::EmitJson(name, on.exec_per_sec, on.steps_per_sec, config);
  } else {
    std::printf(
        "  %-22s  off %12.0f steps/s   on %12.0f steps/s   overhead %+.2f%%\n",
        name.c_str(), off.steps_per_sec, on.steps_per_sec, overhead);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseArgs(argc, argv);
  // --check <pct>: gate mode for CI. A workload measuring over the threshold
  // is re-measured (up to 2 retries) and judged on its MINIMUM overhead:
  // ambient interference on a shared runner only ever inflates the apparent
  // cost, so the best-of estimate is the one closest to the true cost, and a
  // single noisy sweep doesn't fail the build.
  double check_pct = -1.0;
  std::vector<std::uint64_t> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") continue;
    if (arg == "--check" && i + 1 < argc) {
      check_pct = std::strtod(argv[++i], nullptr);
      continue;
    }
    positional.push_back(std::strtoull(argv[i], nullptr, 10));
  }
  const std::uint64_t pingpong_execs =
      positional.size() > 0 ? positional[0] : 10'000;
  const std::uint64_t samplerepl_iters =
      positional.size() > 1 ? positional[1] : 100'000;
  if (!bench::JsonMode()) {
    std::printf("metrics-plane overhead (probe + per-execution flush)\n");
  }
  // The workload is sliced into many SHORT adjacent off/on pairs (tens of
  // milliseconds each) and the overhead is the median of the per-pair
  // steps/s ratios. Adjacent slices share the machine's thermal/frequency
  // state, so each ratio is clean even while absolute throughput drifts by
  // several percent over the whole run; alternating which arm goes first
  // cancels second-runner bias, and the median discards the pairs a
  // preemption or frequency transition lands in.
  constexpr int kPairs = 31;
  struct ArmResult {
    Measurement off, on;    // best-of per slice, for the throughput columns
    double overhead = 0.0;  // median paired overhead, the contract number
  };
  auto measure = [](auto run, std::uint64_t n) {
    ArmResult r;
    auto best = [](Measurement& best_so_far, const Measurement& m) {
      if (m.steps_per_sec > best_so_far.steps_per_sec) best_so_far = m;
    };
    const std::uint64_t slice = n / kPairs + 1;
    (void)run(slice, false);  // warm-up
    (void)run(slice, true);
    std::vector<double> ratios;
    for (int pair = 0; pair < kPairs; ++pair) {
      const bool off_first = pair % 2 == 0;
      const Measurement first = run(slice, !off_first);
      const Measurement second = run(slice, off_first);
      const Measurement& off = off_first ? first : second;
      const Measurement& on = off_first ? second : first;
      best(r.off, off);
      best(r.on, on);
      if (off.steps_per_sec > 0) {
        ratios.push_back(on.steps_per_sec / off.steps_per_sec);
      }
    }
    std::sort(ratios.begin(), ratios.end());
    if (!ratios.empty()) {
      r.overhead = (1.0 - ratios[ratios.size() / 2]) * 100.0;
    }
    return r;
  };
  const ArmResult pp = measure(RunPingPong, pingpong_execs);
  Report("metrics_overhead_pingpong", pp.off, pp.on, pp.overhead,
         "random rounds=1000 execs=" + std::to_string(pingpong_execs));
  const ArmResult sr = measure(RunSampleRepl, samplerepl_iters);
  Report("metrics_overhead_samplerepl", sr.off, sr.on, sr.overhead,
         "random iters=" + std::to_string(samplerepl_iters) + " max_steps=2000");
  if (check_pct < 0) return 0;
  bool failed = false;
  auto gate = [&](const char* name, auto run, std::uint64_t n,
                  double first_overhead) {
    double lowest = first_overhead;
    for (int retry = 0; retry < 2 && lowest > check_pct; ++retry) {
      lowest = std::min(lowest, measure(run, n).overhead);
    }
    if (lowest > check_pct) {
      std::fprintf(stderr,
                   "FAIL: %s overhead %.2f%% exceeds the %.2f%% gate "
                   "(best of 3 sweeps)\n",
                   name, lowest, check_pct);
      failed = true;
    } else {
      std::fprintf(stderr, "check: %s overhead %.2f%% within %.2f%% gate\n",
                   name, lowest, check_pct);
    }
  };
  gate("pingpong", RunPingPong, pingpong_execs, pp.overhead);
  gate("samplerepl", RunSampleRepl, samplerepl_iters, sr.overhead);
  return failed ? 1 : 0;
}
