// The §5 Fabric bugs (promote-during-copy role assertion; CScale-like
// pipeline null dereference) under both schedulers — the rows the paper
// reports narratively ("awaiting confirmation" in its Table 1).
#include "bench/bench_util.h"
#include "fabric/harness.h"

int main(int argc, char** argv) {
  bench::ParseArgs(argc, argv);
  if (!bench::JsonMode()) {
    std::printf("Table 2 (extension) — Azure Service Fabric model (§5)\n");
  }
  for (const char* strategy : {"random", "pct"}) {
    bench::PrintHeader(std::string("scheduler: ") + strategy);
    {
      fabric::FailoverOptions options;
      options.bugs.promote_during_copy = true;
      systest::TestConfig config = fabric::DefaultConfig(strategy);
      config.time_budget_seconds = 60;
      bench::RunRow("PromoteDuringCopy (role assertion)", config,
                    fabric::MakeFailoverHarness(options));
    }
    {
      fabric::PipelineOptions options;
      options.bugs.unguarded_pipeline_config = true;
      systest::TestConfig config = fabric::DefaultConfig(strategy);
      config.time_budget_seconds = 60;
      bench::RunRow("PipelineNullReference (CScale-like)", config,
                    fabric::MakePipelineHarness(options));
    }
  }
  // Controls.
  bench::PrintHeader("control: fixed model (random)");
  {
    fabric::FailoverOptions options;
    systest::TestConfig config =
        fabric::DefaultConfig("random");
    config.iterations = 10'000;
    bench::RunRow("Failover(fixed)", config,
                  fabric::MakeFailoverHarness(options));
  }
  {
    fabric::PipelineOptions options;
    systest::TestConfig config =
        fabric::DefaultConfig("random");
    config.iterations = 10'000;
    bench::RunRow("Pipeline(fixed)", config,
                  fabric::MakePipelineHarness(options));
  }
  return 0;
}
