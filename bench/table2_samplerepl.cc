// The §2.2 example system's two seeded bugs (safety: non-unique replica
// counting; liveness: missing counter reset) under both schedulers —
// Table 2-style rows for the paper's worked example.
#include "bench/bench_util.h"
#include "samplerepl/harness.h"

namespace {

systest::TestConfig Config(systest::StrategyName strategy) {
  systest::TestConfig config;
  config.iterations = 100'000;
  config.max_steps = 2'000;
  config.seed = 2016;
  config.strategy = strategy;
  config.strategy_budget = 2;
  config.time_budget_seconds = 60;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseArgs(argc, argv);
  if (!bench::JsonMode()) {
    std::printf("Table 2 (extension) — §2.2 example replication system\n");
  }
  for (const char* strategy : {"random", "pct"}) {
    bench::PrintHeader(std::string("scheduler: ") + strategy);
    {
      samplerepl::HarnessOptions options;
      options.bugs.non_unique_replica_count = true;
      bench::RunRow("NonUniqueReplicaCount (safety)", Config(strategy),
                    samplerepl::MakeHarness(options));
    }
    {
      samplerepl::HarnessOptions options;
      options.bugs.no_counter_reset = true;
      bench::RunRow("NoReplicaCounterReset (liveness)", Config(strategy),
                    samplerepl::MakeHarness(options));
    }
  }
  // Control: the fixed system.
  bench::PrintHeader("control: both bugs fixed (random)");
  samplerepl::HarnessOptions fixed;
  systest::TestConfig config = Config("random");
  config.iterations = 5'000;
  bench::RunRow("FixedSystem", config, samplerepl::MakeHarness(fixed));
  return 0;
}
