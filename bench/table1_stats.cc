// Reproduces Table 1: modeling-cost statistics for the case studies.
//
// For each case study we report, analogous to the paper's columns:
//   #LoC (system)   lines of C++ implementing the system-under-test
//   #B              re-introducible bugs
//   #LoC (harness)  lines of C++ implementing the P#-style harness
//   #M              machines instantiated by the default harness
//   #ST             state declarations across those machines/monitors
//   #AH             action handlers registered across them
//
// LoC are counted from the source tree (pass SYSTEST_SOURCE_DIR, set by the
// build); machine statistics come from instantiating each harness in a
// throwaway runtime and asking it (Runtime::GetStats).
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/systest.h"
#include "fabric/harness.h"
#include "mtable/harness.h"
#include "samplerepl/harness.h"
#include "vnext/harness.h"

namespace {

std::size_t CountLines(const std::filesystem::path& root,
                       const std::vector<std::string>& files) {
  std::size_t lines = 0;
  for (const std::string& file : files) {
    std::ifstream in(root / file);
    std::string line;
    while (std::getline(in, line)) {
      ++lines;
    }
  }
  return lines;
}

systest::Runtime::Stats HarnessStats(const systest::Harness& harness) {
  systest::RoundRobinStrategy strategy;
  strategy.PrepareIteration(0, 100);
  systest::Runtime rt(strategy, {});
  harness(rt);
  // Step a little so dynamically created machines (drivers create the rest)
  // come into existence.
  for (int i = 0; i < 50 && rt.Step(); ++i) {
  }
  return rt.GetStats();
}

void Row(const std::string& name, std::size_t system_loc, int bugs,
         std::size_t harness_loc, const systest::Runtime::Stats& stats) {
  std::printf("  %-28s %8zu  %3d  %8zu  %4zu  %4zu  %4zu\n", name.c_str(),
              system_loc, bugs, harness_loc, stats.machines + stats.monitors,
              stats.states, stats.action_handlers);
}

}  // namespace

int main() {
#ifndef SYSTEST_SOURCE_DIR
#define SYSTEST_SOURCE_DIR "."
#endif
  const std::filesystem::path src = std::filesystem::path(SYSTEST_SOURCE_DIR);

  std::printf("Table 1 — modeling statistics (this reproduction)\n");
  std::printf("  %-28s %8s  %3s  %8s  %4s  %4s  %4s\n", "System-under-test",
              "#LoC sys", "#B", "#LoC hrn", "#M", "#ST", "#AH");
  std::printf("  ---------------------------- --------  ---  --------  ----  "
              "----  ----\n");

  // vNext: the real ExtentManager vs its harness machines.
  Row("vNext Extent Manager",
      CountLines(src, {"src/vnext/types.h", "src/vnext/extent_center.h",
                       "src/vnext/extent_center.cc",
                       "src/vnext/extent_manager.h",
                       "src/vnext/extent_manager.cc"}),
      1,
      CountLines(src, {"src/vnext/harness_events.h",
                       "src/vnext/extent_manager_machine.h",
                       "src/vnext/extent_manager_machine.cc",
                       "src/vnext/extent_node_machine.h",
                       "src/vnext/extent_node_machine.cc",
                       "src/vnext/testing_driver.h",
                       "src/vnext/testing_driver.cc",
                       "src/vnext/repair_monitor.h",
                       "src/vnext/repair_monitor.cc", "src/vnext/harness.h",
                       "src/vnext/harness.cc"}),
      HarnessStats(vnext::MakeExtentRepairHarness(vnext::DriverOptions{})));

  // MigratingTable: the protocol library vs the differential harness.
  Row("MigratingTable",
      CountLines(src, {"src/mtable/migrating_table.h",
                       "src/mtable/migrating_table.cc",
                       "src/mtable/migrator.h", "src/mtable/migrator.cc",
                       "src/chaintable/types.h",
                       "src/chaintable/chain_table.h",
                       "src/chaintable/memory_table.h",
                       "src/chaintable/memory_table.cc"}),
      11,
      CountLines(src, {"src/mtable/protocol.h", "src/mtable/tables_machine.h",
                       "src/mtable/tables_machine.cc", "src/mtable/service.h",
                       "src/mtable/service.cc",
                       "src/mtable/backend_client_machine.h",
                       "src/mtable/monitors.h", "src/mtable/harness.h",
                       "src/mtable/harness.cc"}),
      HarnessStats(
          mtable::MakeMigrationHarness(mtable::MigrationHarnessOptions{})));

  // Fabric: the model + user services vs its harness.
  Row("Fabric user service",
      CountLines(src, {"src/fabric/replica.h", "src/fabric/replica.cc",
                       "src/fabric/pipeline.h", "src/fabric/pipeline.cc"}),
      2,
      CountLines(src, {"src/fabric/events.h", "src/fabric/cluster.h",
                       "src/fabric/cluster.cc", "src/fabric/harness.h",
                       "src/fabric/harness.cc"}),
      HarnessStats(fabric::MakeFailoverHarness(fabric::FailoverOptions{})));

  // The worked example of §2.
  Row("SampleRepl (sec. 2.2)",
      CountLines(src, {"src/samplerepl/server.h", "src/samplerepl/server.cc"}),
      2,
      CountLines(src, {"src/samplerepl/events.h", "src/samplerepl/client.h",
                       "src/samplerepl/client.cc",
                       "src/samplerepl/storage_node.h",
                       "src/samplerepl/storage_node.cc",
                       "src/samplerepl/monitors.h",
                       "src/samplerepl/monitors.cc",
                       "src/samplerepl/harness.h",
                       "src/samplerepl/harness.cc"}),
      HarnessStats(samplerepl::MakeHarness(samplerepl::HarnessOptions{})));

  std::printf(
      "\n#M/#ST/#AH are counted from the instantiated default harness; the\n"
      "paper counted them from source. Absolute LoC differ from the paper's\n"
      "(C# production systems vs from-scratch C++ reproductions); the shape\n"
      "to compare is the harness-to-system ratio per case study.\n");
  return 0;
}
